"""Backend routing: send narrow subproblems to the truth-table kernel.

The solver is written against the :class:`repro.bdd.FunctionBackend`
protocol, so a relation can be solved on whichever engine suits its
width.  This module holds the policy and the boundary conversions:

* :func:`route_relation` — decide, from ``BrelOptions.backend`` /
  ``table_width``, whether a relation should move to the table engine;
* :func:`relation_to_table` — rebuild a relation on a fresh
  :class:`~repro.table.TableManager` over a compacted (order-
  preserving) variable frame, converting the BDD by structural
  cofactor enumeration;
* :class:`RoutedRelation` — the conversion context, able to translate
  solved functions back to the parent manager via minterm enumeration
  + :meth:`~repro.bdd.BddManager.from_minterms`;
* :class:`SubproblemRouter` — the *in-recursion* routing path: inside
  one BDD-backed solve, ISF minimisations whose support has narrowed
  to the table width are computed on a throwaway table manager whose
  variables are the ISF's support ranks, producing exactly the rank
  template the memo layer would store; the template is instantiated
  back over the parent support, so results are byte-identical to an
  unrouted solve while the inner minimisation runs on the fast kernel.

Because the compaction preserves relative variable order and both
backends expose the same reduced-BDD structural view, a routed solve
makes the same split decisions, the same ISOP covers, and the same
cost measurements as the BDD solve — only the kernel underneath each
operation changes.  Memo signatures are renaming-invariant, so
templates minted on one backend instantiate under the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..bdd.manager import FALSE, TRUE
from ..table import DEFAULT_TABLE_WIDTH, MAX_TABLE_WIDTH, TableManager
from .memo import (template_from_var_cover, var_cover_from_template,
                   instantiate_var_cover)
from .relation import BooleanRelation
from .solution import Solution

__all__ = ["BACKEND_CHOICES", "DEFAULT_ROUTE_CONVERSION_BUDGET",
           "RoutedRelation", "SubproblemRouter", "relation_to_table",
           "route_decision", "route_relation", "routing_width"]

#: Valid ``BrelOptions.backend`` values.  ``None`` and ``"bdd"`` keep
#: every subproblem on the BDD engine (the byte-identical default),
#: ``"auto"`` routes relations whose variable frame fits the width
#: threshold, ``"table"`` forces the table engine (raising when the
#: relation is too wide).
BACKEND_CHOICES = (None, "bdd", "table", "auto")


@dataclass
class RoutedRelation:
    """A relation rebuilt on the table backend, plus its way back.

    Attributes
    ----------
    relation:
        The table-backed equivalent of ``parent`` (same semantics,
        compacted variable frame).
    parent:
        The original BDD-backed relation.
    var_map:
        Parent variable level -> table variable index (order
        preserving).
    """

    relation: BooleanRelation
    parent: BooleanRelation
    var_map: Dict[int, int]

    def function_to_parent(self, func: int) -> int:
        """Translate a solved table function back to the parent manager.

        ``func`` must depend only on the routed relation's inputs (true
        of every solver output); the translation enumerates its
        minterms over them and rebuilds the function with
        ``from_minterms`` on the parent manager.
        """
        table_inputs = self.relation.inputs
        parent_inputs = self.parent.inputs
        minterms = self.relation.mgr.minterms(func, table_inputs)
        return self.parent.mgr.from_minterms(parent_inputs, minterms)

    def solution_converter(self) -> Callable[[Solution], Solution]:
        """A memoised ``Solution`` translator (table -> parent manager).

        The same ``Solution`` object appears in several places of one
        run (the ``new-best`` event, the improvement list, the final
        result), and translated functions must stay identical across
        those appearances; the memo also keeps the originals alive so
        ``id``-keying is sound.
        """
        cache: Dict[int, Tuple[Solution, Solution]] = {}

        def convert(solution: Solution) -> Solution:
            hit = cache.get(id(solution))
            if hit is not None:
                return hit[1]
            converted = Solution(
                mgr=self.parent.mgr,
                functions=tuple(self.function_to_parent(func)
                                for func in solution.functions),
                cost=solution.cost)
            cache[id(solution)] = (solution, converted)
            return converted

        return convert


def routing_width(table_width: Optional[int]) -> int:
    """The effective width threshold (`None` -> the default)."""
    return DEFAULT_TABLE_WIDTH if table_width is None else table_width


def _frame_of(relation: BooleanRelation) -> Tuple[int, ...]:
    """The sorted variable frame (inputs + outputs) of a relation."""
    return tuple(sorted(set(relation.inputs) | set(relation.outputs)))


def relation_to_table(relation: BooleanRelation,
                      table_width: Optional[int] = None,
                      kernel: Optional[str] = None) -> RoutedRelation:
    """Rebuild ``relation`` on a fresh :class:`TableManager`.

    The table frame is the relation's variable frame compacted to
    ``0..k-1`` preserving relative order (so reduced-BDD structure —
    and therefore split choices, ISOP covers, sizes and fingerprint
    ranks — is unchanged).  ``kernel`` selects the raw-table kernel
    (``TableManager``'s knob).  Raises ``ValueError`` when the frame
    exceeds the width threshold or the characteristic function depends
    on variables outside it.
    """
    width = routing_width(table_width)
    frame = _frame_of(relation)
    if len(frame) > width:
        raise ValueError(
            "relation frame has %d variables, beyond the table backend "
            "width %d; raise table_width (<= %d) or use backend='auto'"
            % (len(frame), width, MAX_TABLE_WIDTH))
    parent = relation.mgr
    rank = {var: index for index, var in enumerate(frame)}
    if any(var not in rank for var in parent.support(relation.node)):
        raise ValueError("relation depends on variables outside its "
                         "declared inputs/outputs; cannot route")
    tm = TableManager([parent.var_name(var) for var in frame],
                      max_width=max(len(frame), 1), kernel=kernel)
    node = _node_to_table(parent, tm, relation.node, rank)
    routed = BooleanRelation(
        tm,
        tuple(rank[var] for var in relation.inputs),
        tuple(rank[var] for var in relation.outputs),
        node)
    return RoutedRelation(relation=routed, parent=relation, var_map=rank)


def _node_to_table(parent, tm: TableManager, node: int,
                   rank: Dict[int, int],
                   memo: Optional[Dict[int, int]] = None) -> int:
    """Convert a BDD node to a table handle by cofactor enumeration.

    Post-order over the (bounded-depth) DAG: each internal node becomes
    ``ite(var, high, low)`` on the table manager, sharing converted
    subgraphs through the memo.  Pass a shared ``memo`` (seeded with
    the terminals) to share subgraphs across several conversions onto
    the same table manager.
    """
    if memo is None:
        memo = {FALSE: FALSE, TRUE: TRUE}
    stack = [node]
    while stack:
        current = stack[-1]
        if current in memo:
            stack.pop()
            continue
        lo, hi = parent.low(current), parent.high(current)
        lo_t = memo.get(lo)
        hi_t = memo.get(hi)
        if lo_t is None:
            stack.append(lo)
        if hi_t is None:
            stack.append(hi)
        if lo_t is not None and hi_t is not None:
            stack.pop()
            var = rank[parent.level(current)]
            memo[current] = tm.ite(tm.var(var), hi_t, lo_t)
    return memo[node]


def route_relation(relation: BooleanRelation, backend: Optional[str],
                   table_width: Optional[int],
                   kernel: Optional[str] = None
                   ) -> Optional[RoutedRelation]:
    """Apply the routing policy; ``None`` means stay on this manager.

    ``backend=None``/``"bdd"`` never route.  ``"auto"`` routes when the
    relation's variable frame fits the width threshold and the relation
    is not already table-backed; an unroutable relation silently stays
    on the BDD engine.  ``"table"`` demands the table engine and raises
    ``ValueError`` when the relation cannot be represented there.
    """
    return route_decision(relation, backend, table_width, kernel)[0]


def route_decision(relation: BooleanRelation, backend: Optional[str],
                   table_width: Optional[int],
                   kernel: Optional[str] = None
                   ) -> Tuple[Optional[RoutedRelation], Optional[str]]:
    """:func:`route_relation` plus a human-readable explanation.

    Returns ``(routed, detail)``.  ``detail`` is ``None`` exactly when
    no routing was requested (``backend`` None/"bdd") — otherwise it
    names the engine chosen, the width that drove the decision, and
    the fallback reason when "auto" stayed on the BDD engine.  The
    solver surfaces it as a ``route`` event so the silent "auto"
    fallback is visible in the anytime stream.
    """
    if backend is None or backend == "bdd":
        return None, None
    width = routing_width(table_width)
    if isinstance(relation.mgr, TableManager):
        return None, ("backend=table kernel=%s (already table-backed)"
                      % relation.mgr.kernel)
    if backend == "table":
        routed = relation_to_table(relation, table_width, kernel)
        mgr = routed.relation.mgr
        return routed, ("backend=table width=%d/%d kernel=%s"
                        % (mgr.num_vars, width, mgr.kernel))
    # "auto": route only what fits.
    frame = _frame_of(relation)
    if len(frame) > width:
        return None, ("backend=bdd (frame %d wider than table_width %d)"
                      % (len(frame), width))
    try:
        routed = relation_to_table(relation, table_width, kernel)
    except ValueError as exc:
        return None, "backend=bdd (fallback: %s)" % exc
    mgr = routed.relation.mgr
    return routed, ("backend=table width=%d/%d kernel=%s"
                    % (mgr.num_vars, width, mgr.kernel))


#: Default per-solve cap on fresh ISF-to-table conversions.  Each
#: conversion walks the subproblem's interval BDDs once; the cap
#: bounds that overhead on adversarial runs where no signature ever
#: repeats, while normal runs (heavy signature reuse) rarely reach it.
DEFAULT_ROUTE_CONVERSION_BUDGET = 512


class SubproblemRouter:
    """In-recursion routing of narrow ISF minimisations onto the table kernel.

    One router serves one solve.  When the solver's evaluation /
    quick-solve pipeline is about to run a *structural* minimiser on an
    ISF whose support has narrowed to ``table_width`` variables or
    fewer, :meth:`minimize` rebuilds the ISF once on a throwaway
    :class:`TableManager` whose variables are the support ranks
    ``0..k-1`` (order preserving), runs the minimiser there, and keeps
    the resulting *rank template* — exactly the object the memo layer
    stores for that signature.  Instantiating the template back over
    the parent support reproduces the unrouted result byte-for-byte
    (the memo transparency invariant), so routing changes wall-clock,
    never answers.

    Templates are memoised by the PR 4 signature key, so a subproblem
    is never converted twice; fresh conversions are bounded by
    ``conversion_budget`` (``None`` = unlimited).  Counters land in the
    shared :class:`~repro.core.solution.SolverStats`:
    ``subproblems_routed`` (minimisations served), ``route_conversions``
    (fresh table builds), ``route_hits`` (template reuse).
    """

    def __init__(self, stats, table_width: Optional[int] = None,
                 kernel: Optional[str] = None,
                 conversion_budget: Optional[int] =
                 DEFAULT_ROUTE_CONVERSION_BUDGET):
        self.stats = stats
        self.width = routing_width(table_width)
        self.kernel = kernel
        self.conversion_budget = conversion_budget
        #: True once the conversion budget is spent (solver emits one
        #: ``route`` event when it sees this flip).
        self.exhausted = False
        #: True when table construction itself failed (e.g. a width
        #: past the int-kernel ceiling without numpy); the router then
        #: stands down for the rest of the solve.
        self.disabled = False
        # (sig.key, minimizer_name) -> rank template.
        self._templates: Dict[Tuple, Tuple] = {}
        # (sig.key, minimizer_name, support) -> (node, var cover).
        # Same template over the same support instantiates to the same
        # node (ROBDD canonicity), and the parent manager never
        # collects mid-solve, so serving repeats from here skips the
        # cover rebuild without changing any answer.
        self._instantiated: Dict[Tuple, Tuple[int, Tuple]] = {}

    def minimize(self, isf, minimizer, minimizer_name: str):
        """Serve one minimisation from the table kernel, or ``None``.

        ``None`` means "not routed — run the minimiser normally": the
        ISF is already table-backed, its support is empty or wider
        than the table width, the budget is exhausted, or conversion
        failed.  Otherwise returns ``(node, var_cover)`` exactly as
        :func:`~repro.core.minimize._run_with_cover` would.
        """
        mgr = isf.mgr
        if self.disabled or isinstance(mgr, TableManager):
            return None
        sig = isf.signature()
        support = sig.support
        if not support or len(support) > self.width:
            return None
        key = (sig.key, minimizer_name)
        template = self._templates.get(key)
        if template is None:
            if self.exhausted:
                return None
            if (self.conversion_budget is not None and
                    self.stats.route_conversions >= self.conversion_budget):
                self.exhausted = True
                return None
            try:
                template = self._mint(isf, support, minimizer,
                                      minimizer_name)
            except ValueError:
                self.disabled = True
                return None
            self._templates[key] = template
            self.stats.route_conversions += 1
        else:
            self.stats.route_hits += 1
        self.stats.subproblems_routed += 1
        inst_key = (sig.key, minimizer_name, support)
        served = self._instantiated.get(inst_key)
        if served is None:
            cover = var_cover_from_template(template, support)
            served = (instantiate_var_cover(mgr, cover), cover)
            self._instantiated[inst_key] = served
        return served

    def _mint(self, isf, support: Tuple[int, ...], minimizer,
              minimizer_name: str) -> Tuple:
        """Convert the ISF to a rank-framed table and minimise there.

        The table's variable ``i`` *is* support rank ``i``, so the
        cover the structural minimiser extracts is already at rank
        level and ``template_from_var_cover`` maps it with the
        identity — producing what a memo-on unrouted run would have
        stored for this signature.
        """
        from .isf import Isf
        from .minimize import _run_with_cover
        parent = isf.mgr
        rank = {var: index for index, var in enumerate(support)}
        tm = TableManager([parent.var_name(var) for var in support],
                          max_width=len(support), kernel=self.kernel)
        memo: Dict[int, int] = {FALSE: FALSE, TRUE: TRUE}
        on_t = _node_to_table(parent, tm, isf.on, rank, memo)
        dc_t = _node_to_table(parent, tm, isf.dc, rank, memo)
        table_isf = Isf(tm, on_t, dc_t, tuple(range(len(support))))
        _, cover = _run_with_cover(table_isf, minimizer, minimizer_name)
        identity = {index: index for index in range(len(support))}
        return template_from_var_cover(cover, identity)
