"""Backend routing: send narrow subproblems to the truth-table kernel.

The solver is written against the :class:`repro.bdd.FunctionBackend`
protocol, so a relation can be solved on whichever engine suits its
width.  This module holds the policy and the boundary conversions:

* :func:`route_relation` — decide, from ``BrelOptions.backend`` /
  ``table_width``, whether a relation should move to the table engine;
* :func:`relation_to_table` — rebuild a relation on a fresh
  :class:`~repro.table.TableManager` over a compacted (order-
  preserving) variable frame, converting the BDD by structural
  cofactor enumeration;
* :class:`RoutedRelation` — the conversion context, able to translate
  solved functions back to the parent manager via minterm enumeration
  + :meth:`~repro.bdd.BddManager.from_minterms`.

Because the compaction preserves relative variable order and both
backends expose the same reduced-BDD structural view, a routed solve
makes the same split decisions, the same ISOP covers, and the same
cost measurements as the BDD solve — only the kernel underneath each
operation changes.  Memo signatures are renaming-invariant, so
templates minted on one backend instantiate under the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..bdd.manager import FALSE, TRUE
from ..table import DEFAULT_TABLE_WIDTH, MAX_TABLE_WIDTH, TableManager
from .relation import BooleanRelation
from .solution import Solution

__all__ = ["BACKEND_CHOICES", "RoutedRelation", "relation_to_table",
           "route_relation", "routing_width"]

#: Valid ``BrelOptions.backend`` values.  ``None`` and ``"bdd"`` keep
#: every subproblem on the BDD engine (the byte-identical default),
#: ``"auto"`` routes relations whose variable frame fits the width
#: threshold, ``"table"`` forces the table engine (raising when the
#: relation is too wide).
BACKEND_CHOICES = (None, "bdd", "table", "auto")


@dataclass
class RoutedRelation:
    """A relation rebuilt on the table backend, plus its way back.

    Attributes
    ----------
    relation:
        The table-backed equivalent of ``parent`` (same semantics,
        compacted variable frame).
    parent:
        The original BDD-backed relation.
    var_map:
        Parent variable level -> table variable index (order
        preserving).
    """

    relation: BooleanRelation
    parent: BooleanRelation
    var_map: Dict[int, int]

    def function_to_parent(self, func: int) -> int:
        """Translate a solved table function back to the parent manager.

        ``func`` must depend only on the routed relation's inputs (true
        of every solver output); the translation enumerates its
        minterms over them and rebuilds the function with
        ``from_minterms`` on the parent manager.
        """
        table_inputs = self.relation.inputs
        parent_inputs = self.parent.inputs
        minterms = self.relation.mgr.minterms(func, table_inputs)
        return self.parent.mgr.from_minterms(parent_inputs, minterms)

    def solution_converter(self) -> Callable[[Solution], Solution]:
        """A memoised ``Solution`` translator (table -> parent manager).

        The same ``Solution`` object appears in several places of one
        run (the ``new-best`` event, the improvement list, the final
        result), and translated functions must stay identical across
        those appearances; the memo also keeps the originals alive so
        ``id``-keying is sound.
        """
        cache: Dict[int, Tuple[Solution, Solution]] = {}

        def convert(solution: Solution) -> Solution:
            hit = cache.get(id(solution))
            if hit is not None:
                return hit[1]
            converted = Solution(
                mgr=self.parent.mgr,
                functions=tuple(self.function_to_parent(func)
                                for func in solution.functions),
                cost=solution.cost)
            cache[id(solution)] = (solution, converted)
            return converted

        return convert


def routing_width(table_width: Optional[int]) -> int:
    """The effective width threshold (`None` -> the default)."""
    return DEFAULT_TABLE_WIDTH if table_width is None else table_width


def _frame_of(relation: BooleanRelation) -> Tuple[int, ...]:
    """The sorted variable frame (inputs + outputs) of a relation."""
    return tuple(sorted(set(relation.inputs) | set(relation.outputs)))


def relation_to_table(relation: BooleanRelation,
                      table_width: Optional[int] = None) -> RoutedRelation:
    """Rebuild ``relation`` on a fresh :class:`TableManager`.

    The table frame is the relation's variable frame compacted to
    ``0..k-1`` preserving relative order (so reduced-BDD structure —
    and therefore split choices, ISOP covers, sizes and fingerprint
    ranks — is unchanged).  Raises ``ValueError`` when the frame
    exceeds the width threshold or the characteristic function depends
    on variables outside it.
    """
    width = routing_width(table_width)
    frame = _frame_of(relation)
    if len(frame) > width:
        raise ValueError(
            "relation frame has %d variables, beyond the table backend "
            "width %d; raise table_width (<= %d) or use backend='auto'"
            % (len(frame), width, MAX_TABLE_WIDTH))
    parent = relation.mgr
    rank = {var: index for index, var in enumerate(frame)}
    if any(var not in rank for var in parent.support(relation.node)):
        raise ValueError("relation depends on variables outside its "
                         "declared inputs/outputs; cannot route")
    tm = TableManager([parent.var_name(var) for var in frame],
                      max_width=max(len(frame), 1))
    node = _node_to_table(parent, tm, relation.node, rank)
    routed = BooleanRelation(
        tm,
        tuple(rank[var] for var in relation.inputs),
        tuple(rank[var] for var in relation.outputs),
        node)
    return RoutedRelation(relation=routed, parent=relation, var_map=rank)


def _node_to_table(parent, tm: TableManager, node: int,
                   rank: Dict[int, int]) -> int:
    """Convert a BDD node to a table handle by cofactor enumeration.

    Post-order over the (bounded-depth) DAG: each internal node becomes
    ``ite(var, high, low)`` on the table manager, sharing converted
    subgraphs through the memo.
    """
    memo: Dict[int, int] = {FALSE: FALSE, TRUE: TRUE}
    stack = [node]
    while stack:
        current = stack[-1]
        if current in memo:
            stack.pop()
            continue
        lo, hi = parent.low(current), parent.high(current)
        lo_t = memo.get(lo)
        hi_t = memo.get(hi)
        if lo_t is None:
            stack.append(lo)
        if hi_t is None:
            stack.append(hi)
        if lo_t is not None and hi_t is not None:
            stack.pop()
            var = rank[parent.level(current)]
            memo[current] = tm.ite(tm.var(var), hi_t, lo_t)
    return memo[node]


def route_relation(relation: BooleanRelation, backend: Optional[str],
                   table_width: Optional[int]
                   ) -> Optional[RoutedRelation]:
    """Apply the routing policy; ``None`` means stay on this manager.

    ``backend=None``/``"bdd"`` never route.  ``"auto"`` routes when the
    relation's variable frame fits the width threshold and the relation
    is not already table-backed; an unroutable relation silently stays
    on the BDD engine.  ``"table"`` demands the table engine and raises
    ``ValueError`` when the relation cannot be represented there.
    """
    if backend is None or backend == "bdd":
        return None
    if isinstance(relation.mgr, TableManager):
        return None
    if backend == "table":
        return relation_to_table(relation, table_width)
    # "auto": route only what fits.
    frame = _frame_of(relation)
    if len(frame) > routing_width(table_width):
        return None
    try:
        return relation_to_table(relation, table_width)
    except ValueError:
        return None
