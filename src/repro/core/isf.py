"""Incompletely specified functions (ISFs) and vectors thereof (MISFs).

Paper Definitions 4.4 and 4.5: an ISF is a function ``B^n -> {0, 1, *}``
characterised by its ON / OFF / DC sets, equivalently by the interval of
Boolean functions ``[ON, ON + DC]``.  An MISF is a vector of ISFs sharing
the input space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..bdd.backend import FunctionBackend
from ..bdd.manager import FALSE, TRUE
from .memo import Signature


@dataclass(frozen=True)
class Isf:
    """An ISF as the interval ``[on, on | dc]`` of BDD nodes.

    Attributes
    ----------
    mgr:
        Owning BDD manager.
    on, dc:
        ON-set and DC-set characteristic functions (disjoint by
        construction).  The OFF set is the complement of their union.
    inputs:
        The input variables the ISF ranges over (used by minimisers that
        need the full input space, e.g. for support reduction).
    """

    mgr: FunctionBackend
    on: int
    dc: int
    inputs: Tuple[int, ...]
    #: Lazily cached ``on | dc`` (instances are immutable, so the union
    #: is computed at most once per ISF instead of per ``upper`` access).
    _upper: Optional[int] = field(default=None, init=False, repr=False,
                                  compare=False)
    #: Lazily cached :meth:`signature`.
    _sig: Optional[Signature] = field(default=None, init=False,
                                      repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.mgr.and_(self.on, self.dc) != FALSE:
            raise ValueError("ISF ON and DC sets must be disjoint")

    @property
    def upper(self) -> int:
        """The maximum implementation ``on | dc`` (computed once).

        ``admits`` / ``off`` sit on the solver's hottest minimisation
        paths, and each used to re-issue the ``or_`` per access; the
        one-shot computation caches the node on the instance so repeat
        accesses never touch the manager at all.
        """
        upper = self._upper
        if upper is None:
            upper = self.mgr.or_(self.on, self.dc)
            object.__setattr__(self, "_upper", upper)
        return upper

    def signature(self) -> Signature:
        """Canonical subproblem identity of this ISF.

        The combined support of ``on`` and ``dc`` is renumbered to
        ``0..k-1`` (order-preserving), so ISFs identical up to such a
        renaming — the same interval shifted to a different support —
        share a signature and hence a
        :class:`~repro.core.memo.MemoStore` slot.  ``inputs`` is
        deliberately *not* part of the identity: no minimiser's result
        depends on variables outside the interval's support.
        """
        sig = self._sig
        if sig is None:
            mgr = self.mgr
            support = tuple(sorted(set(mgr.support(self.on))
                                   | set(mgr.support(self.dc))))
            ranks = {var: rank for rank, var in enumerate(support)}
            fp_on, fp_dc = mgr.fingerprints((self.on, self.dc), ranks)
            sig = Signature(("isf", len(support), fp_on, fp_dc), support)
            object.__setattr__(self, "_sig", sig)
        return sig

    @property
    def off(self) -> int:
        """The OFF-set characteristic function."""
        return self.mgr.not_(self.upper)

    @property
    def is_completely_specified(self) -> bool:
        """True when the DC set is empty (a plain Boolean function)."""
        return self.dc == FALSE

    def admits(self, function: int) -> bool:
        """Is ``function`` an implementation (``on <= function <= upper``)?"""
        return (self.mgr.implies(self.on, function)
                and self.mgr.implies(function, self.upper))

    def value_at(self, assignment) -> str:
        """Return ``'0'``, ``'1'`` or ``'-'`` at a full input assignment."""
        if self.mgr.eval(self.on, assignment):
            return "1"
        if self.mgr.eval(self.dc, assignment):
            return "-"
        return "0"

    def with_interval(self, lower: int, upper: int) -> "Isf":
        """Build an ISF from interval endpoints instead of (on, dc) sets."""
        return Isf(self.mgr, lower, self.mgr.diff(upper, lower), self.inputs)

    @staticmethod
    def from_interval(mgr: FunctionBackend, lower: int, upper: int,
                      inputs: Sequence[int]) -> "Isf":
        """Construct from the interval ``[lower, upper]``."""
        if not mgr.implies(lower, upper):
            raise ValueError("ISF interval requires lower <= upper")
        return Isf(mgr, lower, mgr.diff(upper, lower), tuple(inputs))


class Misf:
    """A multiple-output ISF: a vector of ISFs over a shared input space."""

    def __init__(self, components: Sequence[Isf]) -> None:
        if not components:
            raise ValueError("an MISF needs at least one component")
        managers = {isf.mgr for isf in components}
        if len(managers) != 1:
            raise ValueError("MISF components must share one manager")
        self.components: List[Isf] = list(components)
        self.mgr: FunctionBackend = components[0].mgr

    def __len__(self) -> int:
        return len(self.components)

    def __iter__(self):
        return iter(self.components)

    def __getitem__(self, index: int) -> Isf:
        return self.components[index]

    def admits(self, functions: Sequence[int]) -> bool:
        """Pointwise interval membership of a function vector."""
        if len(functions) != len(self.components):
            raise ValueError("function vector arity mismatch")
        return all(isf.admits(func)
                   for isf, func in zip(self.components, functions))
