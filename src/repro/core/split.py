"""Split-point selection (paper Section 7.4).

When the minimised MISF conflicts with the relation, BREL picks:

* the input vertex ``x``: existentially abstract the outputs from the
  incompatibility characteristic function, take the *shortest path* in the
  resulting BDD (the largest cube of adjacent conflicting vertices) and
  bind its don't-care variables to 1;
* the output ``y_i``: the first output in the BDD variable order whose
  projection still allows both values at ``x`` (the Theorem 5.2
  precondition for a well-defined strict split).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..bdd.manager import FALSE
from ..bdd.traversal import shortest_path_cube
from .relation import BooleanRelation


@dataclass(frozen=True)
class SplitChoice:
    """A selected split point: full input vertex plus output position."""

    vertex: Tuple[Tuple[int, bool], ...]
    position: int

    def vertex_dict(self) -> Dict[int, bool]:
        return dict(self.vertex)


def select_split(relation: BooleanRelation,
                 functions: Sequence[int]) -> Optional[SplitChoice]:
    """Choose the split point for an incompatible candidate function.

    Returns None when the candidate is actually compatible (no conflicts).
    Raises ``ValueError`` if no output admits both values at the chosen
    vertex — impossible for conflicts arising from a well-defined
    relation, so it indicates caller misuse.
    """
    conflicts = relation.conflict_inputs(functions)
    if conflicts == FALSE:
        return None
    return select_split_from_conflicts(relation, conflicts)


def select_split_from_conflicts(relation: BooleanRelation,
                                conflicts: int) -> SplitChoice:
    """Split selection given the conflict input set ``C = ∃Y.Incomp``."""
    mgr = relation.mgr
    cube = shortest_path_cube(mgr, conflicts)
    if cube is None:
        raise ValueError("conflict set is empty")
    # "The input vertex x is obtained from the incompatible input cube by
    #  assigning the value 1 to the variables with a don't care value."
    vertex = {var: cube.get(var, True) for var in relation.inputs}

    for position in range(len(relation.outputs)):
        isf = relation.project(position)
        if mgr.eval(isf.dc, vertex):
            return SplitChoice(tuple(sorted(vertex.items())), position)
    raise ValueError(
        "no output admits both values at the conflict vertex; "
        "was the relation well defined?")
