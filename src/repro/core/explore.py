"""Pluggable exploration strategies, search events, and cancellation.

The paper's recursive paradigm is an *anytime* branch-and-bound: the
Fig. 6 recursion and the Section 7.2 bounded-FIFO heuristic are two
frontier disciplines over the same subrelation tree.  This module makes
the frontier a first-class object so new disciplines plug in without
touching the solver loop:

* :class:`ExplorationStrategy` — the frontier protocol
  (``push``/``pop``/``prune``/``done``);
* four shipped strategies — ``bfs`` (Section 7.2's bounded FIFO),
  ``dfs`` (the literal Fig. 6 recursion order), ``best-first``
  (priority by the relaxed-MISF cost bound), and ``beam`` (best-first
  with a bounded frontier that evicts the worst node);
* :data:`STRATEGIES` — the name table behind
  :class:`~repro.core.BrelOptions` ``strategy=`` and the
  ``repro.api`` strategy registry;
* :class:`SolveEvent` / :class:`Improvement` — the typed stream a
  running solve emits to observers and anytime iterators;
* :class:`CancelToken` — cooperative cancellation for in-flight
  searches (the programmatic twin of §7.6's time-out completion
  criterion).
"""

from __future__ import annotations

import difflib
import heapq
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Callable, Deque, Dict, List,
                    Optional, Sequence, Tuple)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .relation import BooleanRelation
    from .solution import Solution

#: Event kinds a solve can emit, in the order they typically appear.
#: ``route`` reports a backend-routing decision (``detail`` names the
#: engine chosen, the width that drove it, and the fallback reason when
#: "auto" stayed on the BDD engine — also emitted when in-recursion
#: subproblem routing activates or spends its conversion budget; see
#: :mod:`repro.core.route`); ``partition`` opens a sharded solve (the
#: relation decomposed into ``detail``-described output blocks; see
#: :mod:`repro.core.partition`); ``portfolio`` opens a racing solve
#: (``detail`` names the racers and the executor; see
#: :mod:`repro.core.portfolio`) and ``racer-done`` closes each racer's
#: leg of the race; ``timeout`` / ``cancelled`` / ``budget`` flag an
#: early stop (matching ``BrelResult.stopped``); ``done`` always closes
#: the stream.
EVENT_KINDS = ("route", "partition", "portfolio", "quick-solution",
               "new-best", "branch", "prune", "racer-done", "timeout",
               "cancelled", "budget", "done")

#: ``SolveEvent.detail`` values used by ``prune`` events.
#: ``shared-bound`` marks frontier nodes dropped because *another*
#: portfolio racer published a tighter incumbent cost.
PRUNE_DETAILS = ("cost", "symmetry", "frontier-overflow", "bound",
                 "shared-bound")


def suggest(name: str, choices: Sequence[str]) -> str:
    """A ``did you mean`` suffix for unknown-name errors (may be empty)."""
    close = difflib.get_close_matches(str(name), list(choices), n=1,
                                      cutoff=0.5)
    return " — did you mean %r?" % close[0] if close else ""


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------
class CancelToken:
    """Cooperative cancellation flag, shareable across threads.

    The solver polls the token once per dequeued subrelation, so a
    cancelled search stops at the next node boundary and still returns
    the best solution found so far — the same contract as the paper's
    runtime time-out (§6.3, §7.6), but caller-triggered.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, thread-safe)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __bool__(self) -> bool:
        return self.cancelled

    def __repr__(self) -> str:
        return "CancelToken(cancelled=%r)" % self.cancelled


# ----------------------------------------------------------------------
# Events and improvements
# ----------------------------------------------------------------------
@dataclass
class SolveEvent:
    """One typed occurrence in a running solve.

    Attributes
    ----------
    kind:
        One of :data:`EVENT_KINDS`: ``quick-solution`` (QuickSolver ran
        on the root or a dequeued subrelation), ``new-best`` (the
        incumbent improved; ``solution`` carries the live handle),
        ``branch`` (a subrelation split in two), ``prune`` (a node or
        child was discarded; ``detail`` says why), ``timeout`` /
        ``cancelled`` / ``budget`` (the search stopped early), ``done``
        (the search ended).
    depth:
        Tree depth of the subrelation the event concerns (root = 0).
    explored:
        Subrelations dequeued so far when the event fired.
    cost:
        Cost attached to the event (candidate, quick, or new best).
    best_cost:
        Incumbent cost when the event fired.
    elapsed_seconds:
        Wall-clock time since the solve started.
    detail:
        Free-form qualifier (e.g. a :data:`PRUNE_DETAILS` reason).
    solution:
        Live :class:`~repro.core.Solution` for ``new-best`` events;
        never serialised.
    """

    kind: str
    depth: int = 0
    explored: int = 0
    cost: Optional[float] = None
    best_cost: Optional[float] = None
    elapsed_seconds: float = 0.0
    detail: Optional[str] = None
    solution: Optional["Solution"] = field(default=None, repr=False,
                                           compare=False)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready view (the live solution handle is dropped)."""
        return {
            "kind": self.kind,
            "depth": self.depth,
            "explored": self.explored,
            "cost": self.cost,
            "best_cost": self.best_cost,
            "elapsed_seconds": self.elapsed_seconds,
            "detail": self.detail,
        }


#: Observer callable: receives every SolveEvent of a run, in order.
Observer = Callable[[SolveEvent], None]


@dataclass
class Improvement:
    """One strictly improving solution yielded by the anytime API."""

    solution: "Solution"
    cost: float
    elapsed_seconds: float
    explored: int

    def as_dict(self) -> Dict[str, Any]:
        """Data-only view for reports (drops the live solution)."""
        return {
            "cost": self.cost,
            "elapsed_seconds": self.elapsed_seconds,
            "explored": self.explored,
        }


# ----------------------------------------------------------------------
# Search nodes and the strategy protocol
# ----------------------------------------------------------------------
@dataclass
class SearchNode:
    """One frontier entry: a subrelation plus its search bookkeeping.

    ``bound`` is the parent's relaxed-MISF candidate cost — a lower
    bound on every solution inside this subtree when the ISF minimiser
    is exact (Fig. 6, line 6), and the priority key of the
    ``best-first`` and ``beam`` strategies.  ``seq`` is a monotone
    insertion counter that makes heap ordering deterministic.
    """

    relation: "BooleanRelation"
    depth: int
    bound: float
    seq: int = 0

    def priority(self) -> Tuple[float, int]:
        return (self.bound, self.seq)


class ExplorationStrategy:
    """The frontier discipline of the solver loop.

    A strategy owns the set of pending subrelations and decides which
    one the solver expands next.  The loop interacts through four
    operations:

    ``push(node)``
        offer one node; return ``False`` to reject it (counted as
        frontier overflow);
    ``pop()``
        remove and return the next node to expand;
    ``prune(best_cost)``
        discard queued nodes whose ``bound`` already meets or exceeds
        the new incumbent cost; return how many were dropped;
    ``done()``
        ``True`` when the frontier is exhausted.

    ``push_children(nodes)`` offers an ordered sibling list (the solver
    always pushes the Fig. 6 split pair left-to-right) and returns how
    many were rejected; strategies with order-sensitive placement (DFS)
    override it.
    """

    #: Registry name, set on instances built through :func:`make_strategy`.
    name: str = "?"

    #: Whether ``quick_on_subrelations=None`` (the "strategy default"
    #: tri-state) runs QuickSolver on every dequeued subrelation.  True
    #: for frontier-truncating disciplines (§7.2 pairs the bounded FIFO
    #: with per-subrelation quick solutions); the literal Fig. 6
    #: recursion opts out.  An explicit True/False on the options always
    #: wins.
    quick_by_default: bool = True

    def push(self, node: SearchNode) -> bool:
        raise NotImplementedError

    def pop(self) -> SearchNode:
        raise NotImplementedError

    def prune(self, best_cost: float) -> int:
        return 0

    def done(self) -> bool:
        return len(self) == 0

    def push_children(self, nodes: Sequence[SearchNode]) -> int:
        """Offer an ordered sibling list; return the number rejected."""
        return sum(1 for node in nodes if not self.push(node))

    def seed(self, node: SearchNode) -> None:
        """Admit the root unconditionally (capacity bounds descendants)."""
        self.push(node)

    def __len__(self) -> int:
        raise NotImplementedError


class FifoStrategy(ExplorationStrategy):
    """Breadth-first exploration through a bounded FIFO (Section 7.2).

    ``capacity`` bounds the frontier; a push against a full queue is
    rejected (the solver counts it as ``frontier_overflow``), exactly
    the truncation discipline the paper pairs with per-subrelation
    QuickSolver runs so solvability is never lost.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = capacity
        self._queue: Deque[SearchNode] = deque()

    def push(self, node: SearchNode) -> bool:
        if self.capacity is not None and len(self._queue) >= self.capacity:
            return False
        self._queue.append(node)
        return True

    def pop(self) -> SearchNode:
        return self._queue.popleft()

    def seed(self, node: SearchNode) -> None:
        # The pre-strategy BFS enqueued the root before the capacity
        # check existed; ``fifo_capacity=0`` still explores the root.
        self._queue.append(node)

    def __len__(self) -> int:
        return len(self._queue)


class LifoStrategy(ExplorationStrategy):
    """Depth-first exploration: the literal Fig. 6 recursion order.

    ``push_children`` inserts siblings so the *first* child pops first,
    reproducing the left-to-right recursive descent of the paper's
    pseudo-code node for node.  The recursion of Fig. 6 has no
    per-subrelation QuickSolver step, so the strategy defaults the
    ``quick_on_subrelations`` tri-state to off.
    """

    quick_by_default = False

    def __init__(self) -> None:
        self._stack: List[SearchNode] = []

    def push(self, node: SearchNode) -> bool:
        self._stack.append(node)
        return True

    def pop(self) -> SearchNode:
        return self._stack.pop()

    def push_children(self, nodes: Sequence[SearchNode]) -> int:
        for node in reversed(nodes):
            self._stack.append(node)
        return 0

    def __len__(self) -> int:
        return len(self._stack)


class BestFirstStrategy(ExplorationStrategy):
    """Expand the subrelation with the lowest relaxed-MISF cost bound.

    A classic best-first branch-and-bound frontier: the node whose
    parent candidate was cheapest is the most promising subtree.  On a
    ``new-best`` the strategy drops every queued node whose bound can
    no longer beat the incumbent.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[Tuple[float, int], SearchNode]] = []

    def push(self, node: SearchNode) -> bool:
        heapq.heappush(self._heap, (node.priority(), node))
        return True

    def pop(self) -> SearchNode:
        return heapq.heappop(self._heap)[1]

    def prune(self, best_cost: float) -> int:
        kept = [entry for entry in self._heap
                if entry[1].bound < best_cost]
        dropped = len(self._heap) - len(kept)
        if dropped:
            self._heap = kept
            heapq.heapify(self._heap)
        return dropped

    def __len__(self) -> int:
        return len(self._heap)


class BeamStrategy(BestFirstStrategy):
    """Best-first over a bounded frontier: keep only the ``width`` most
    promising nodes, evicting the worst bound when full.

    Unlike the FIFO's reject-newest overflow, the beam keeps whichever
    ``width`` nodes look best, so a late cheap subtree can displace an
    early expensive one.  Evictions and rejections both count as
    frontier overflow.  Pop order and incumbent-driven pruning are
    inherited from :class:`BestFirstStrategy`.
    """

    def __init__(self, width: int = 64) -> None:
        super().__init__()
        if width < 1:
            raise ValueError("beam width must be >= 1")
        self.width = width

    def push(self, node: SearchNode) -> bool:
        if len(self._heap) < self.width:
            heapq.heappush(self._heap, (node.priority(), node))
            return True
        worst = max(self._heap, key=lambda entry: entry[0])
        if node.priority() >= worst[0]:
            return False
        self._heap.remove(worst)
        heapq.heapify(self._heap)
        heapq.heappush(self._heap, (node.priority(), node))
        return False  # something was dropped either way


# ----------------------------------------------------------------------
# The strategy table
# ----------------------------------------------------------------------
#: A strategy factory receives the live BrelOptions and returns a fresh
#: frontier for one solve.
StrategyFactory = Callable[[Any], ExplorationStrategy]


def _make_bfs(options: Any) -> ExplorationStrategy:
    """Bounded-FIFO breadth-first search (paper Section 7.2)."""
    return FifoStrategy(capacity=options.fifo_capacity)


def _make_dfs(options: Any) -> ExplorationStrategy:
    """Depth-first search in the literal Fig. 6 recursion order."""
    return LifoStrategy()


def _make_best_first(options: Any) -> ExplorationStrategy:
    """Priority search by the relaxed-MISF cost bound."""
    return BestFirstStrategy()


def _make_beam(options: Any) -> ExplorationStrategy:
    """Bounded best-first keeping the ``fifo_capacity`` best nodes.

    Only ``fifo_capacity=None`` falls back to the default width;
    ``fifo_capacity=0`` (a legal FIFO edge case) is rejected by
    :class:`BeamStrategy`, which needs room for at least one node.
    """
    return BeamStrategy(width=options.fifo_capacity
                        if options.fifo_capacity is not None else 64)


def _make_portfolio(options: Any) -> ExplorationStrategy:
    """The portfolio meta-strategy has no frontier of its own.

    ``strategy="portfolio"`` races the *other* registered strategies
    (:mod:`repro.core.portfolio`); the solver dispatches it before any
    frontier is built, so reaching this factory means a caller asked
    for a portfolio frontier directly — an impossible request.
    """
    raise ValueError(
        "'portfolio' is a meta-strategy that races the registered "
        "frontiers (see repro.core.portfolio); it has no frontier of "
        "its own — solve with BrelOptions(strategy='portfolio') "
        "instead of building the strategy directly")


#: Name table of the shipped strategies.  ``repro.api``'s strategy
#: registry backs onto this same dict, so registrations made through
#: either side are visible to both.  ``portfolio`` is the racing
#: meta-strategy: it resolves (so option validation and did-you-mean
#: suggestions know it) but dispatches before frontier construction.
STRATEGIES: Dict[str, StrategyFactory] = {
    "bfs": _make_bfs,
    "dfs": _make_dfs,
    "best-first": _make_best_first,
    "beam": _make_beam,
    "portfolio": _make_portfolio,
}


def strategy_names() -> List[str]:
    """Sorted names of the registered exploration strategies."""
    return sorted(STRATEGIES)


def get_strategy_factory(name: str) -> StrategyFactory:
    """Resolve a strategy name; unknown names get a did-you-mean error."""
    try:
        return STRATEGIES[name]
    except KeyError:
        raise KeyError("unknown strategy %r%s (registered: %s)"
                       % (name, suggest(name, STRATEGIES),
                          ", ".join(sorted(STRATEGIES)) or "none")
                       ) from None


def make_strategy(name: str, options: Any) -> ExplorationStrategy:
    """Build a fresh frontier for one solve from a registered name."""
    strategy = get_strategy_factory(name)(options)
    strategy.name = name
    return strategy
