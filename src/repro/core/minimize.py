"""ISF minimisation back-ends (paper Section 7.5, Table 1).

The solver minimises each projected ISF with a pluggable back-end.  The
paper compares three BDD-based techniques and selects ISOP preceded by
non-essential-variable elimination:

* ``isop`` — greedy elimination of non-essential variables (Brown [9],
  pp. 107-112) followed by Minato-Morreale irredundant SOP [24];
* ``isop-noelim`` — the same without the elimination pre-pass (the
  ablation implicit in Table 1's description);
* ``constrain`` / ``restrict`` — generalized-cofactor minimisation
  [13, 14];
* ``licompact`` — safe interval minimisation, our stand-in for [19].

Every back-end returns a *completely specified* implementation of the ISF,
i.e. a BDD node ``f`` with ``on <= f <= on + dc``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..bdd.gencof import constrain, restrict
from ..bdd.isop import isop
from ..bdd.manager import FALSE, TRUE, BddManager
from ..bdd.safemin import squeeze
from .isf import Isf

#: Minimiser signature: ISF in, implementation node out.
IsfMinimizer = Callable[[Isf], int]


def eliminate_nonessential_variables(isf: Isf) -> Isf:
    """Greedily drop variables whose removal keeps the interval non-empty.

    A variable ``z`` is non-essential when ``[∃z.Min, ∀z.Max]`` is a valid
    interval (Brown [9]); eliminating it yields an ISF none of whose
    implementations depend on ``z``.  Variables are tried top-to-bottom in
    the BDD order, matching the paper's description.
    """
    mgr = isf.mgr
    lower, upper = isf.on, isf.upper
    support = sorted(set(mgr.support(lower)) | set(mgr.support(upper)))
    for var in support:
        new_lower = mgr.exists(lower, [var])
        new_upper = mgr.forall(upper, [var])
        if mgr.implies(new_lower, new_upper):
            lower, upper = new_lower, new_upper
    return Isf.from_interval(mgr, lower, upper, isf.inputs)


def minimize_isop(isf: Isf, eliminate: bool = True) -> int:
    """The paper's chosen pipeline: variable elimination then ISOP."""
    if eliminate:
        isf = eliminate_nonessential_variables(isf)
    _, node = isop(isf.mgr, isf.on, isf.upper)
    return node


def minimize_isop_no_elimination(isf: Isf) -> int:
    """ISOP without the elimination pre-pass (Table 1 ablation)."""
    return minimize_isop(isf, eliminate=False)


def minimize_constrain(isf: Isf) -> int:
    """Generalized-cofactor (constrain) minimisation [13, 14]."""
    care = isf.mgr.not_(isf.dc)
    if care == FALSE:
        return TRUE
    return constrain(isf.mgr, isf.on, care)


def minimize_restrict(isf: Isf) -> int:
    """Generalized-cofactor (restrict) minimisation [13, 14]."""
    care = isf.mgr.not_(isf.dc)
    if care == FALSE:
        return TRUE
    return restrict(isf.mgr, isf.on, care)


def minimize_licompact(isf: Isf) -> int:
    """Safe interval minimisation (LICompact stand-in, see DESIGN.md §4)."""
    return squeeze(isf.mgr, isf.on, isf.upper)


def minimize_exact_cubes(isf: Isf) -> int:
    """Exact minimum-cube implementation by exhaustive search.

    Only usable for tiny supports (the test oracle and the paper's "exact
    mode" requirement that the ISF minimiser itself be exact).  Complexity
    is exponential in the DC count.
    """
    mgr = isf.mgr
    isf = eliminate_nonessential_variables(isf)
    support = sorted(set(mgr.support(isf.on)) | set(mgr.support(isf.upper)))
    dc_minterms = list(mgr.minterms(isf.dc, support))
    if len(dc_minterms) > 12:
        raise ValueError("exact ISF minimisation limited to <= 12 DC points")
    best_node = None
    best_key = None
    for mask in range(1 << len(dc_minterms)):
        node = isf.on
        for bit, value in enumerate(dc_minterms):
            if (mask >> bit) & 1:
                node = mgr.or_(node, mgr.minterm(support, value))
        cover, cover_node = isop(mgr, node, node)
        key = (len(cover), sum(len(c) for c in cover))
        if best_key is None or key < best_key:
            best_key, best_node = key, cover_node
    return best_node


#: Registry used by the Table 1 benchmark and the solver options.
MINIMIZERS: Dict[str, IsfMinimizer] = {
    "isop": minimize_isop,
    "isop-noelim": minimize_isop_no_elimination,
    "constrain": minimize_constrain,
    "restrict": minimize_restrict,
    "licompact": minimize_licompact,
    "exact": minimize_exact_cubes,
}


def get_minimizer(name: str) -> IsfMinimizer:
    """Look up a minimiser by registry name."""
    try:
        return MINIMIZERS[name]
    except KeyError:
        raise ValueError("unknown ISF minimizer %r (available: %s)"
                         % (name, ", ".join(sorted(MINIMIZERS)))) from None


def solve_misf(misf, minimizer: IsfMinimizer = minimize_isop) -> List[int]:
    """Minimise every component of an MISF independently (paper §5.3)."""
    return [minimizer(component) for component in misf]
