"""ISF minimisation back-ends (paper Section 7.5, Table 1).

The solver minimises each projected ISF with a pluggable back-end.  The
paper compares three BDD-based techniques and selects ISOP preceded by
non-essential-variable elimination:

* ``isop`` — greedy elimination of non-essential variables (Brown [9],
  pp. 107-112) followed by Minato-Morreale irredundant SOP [24];
* ``isop-noelim`` — the same without the elimination pre-pass (the
  ablation implicit in Table 1's description);
* ``constrain`` / ``restrict`` — generalized-cofactor minimisation
  [13, 14];
* ``licompact`` — safe interval minimisation, our stand-in for [19].

Every back-end returns a *completely specified* implementation of the ISF,
i.e. a BDD node ``f`` with ``on <= f <= on + dc``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..bdd.gencof import constrain, restrict
from ..bdd.isop import isop
from ..bdd.manager import FALSE, TRUE
from ..bdd.safemin import squeeze
from .isf import Isf
from .memo import (MemoStore, VarCover, instantiate_var_cover,
                   template_from_var_cover, var_cover_from_template)

#: Minimiser signature: ISF in, implementation node out.
IsfMinimizer = Callable[[Isf], int]


def eliminate_nonessential_variables(isf: Isf) -> Isf:
    """Greedily drop variables whose removal keeps the interval non-empty.

    A variable ``z`` is non-essential when ``[∃z.Min, ∀z.Max]`` is a valid
    interval (Brown [9]); eliminating it yields an ISF none of whose
    implementations depend on ``z``.  Variables are tried top-to-bottom in
    the BDD order, matching the paper's description.
    """
    mgr = isf.mgr
    lower, upper = isf.on, isf.upper
    support = sorted(set(mgr.support(lower)) | set(mgr.support(upper)))
    for var in support:
        new_lower = mgr.exists(lower, [var])
        new_upper = mgr.forall(upper, [var])
        if mgr.implies(new_lower, new_upper):
            lower, upper = new_lower, new_upper
    return Isf.from_interval(mgr, lower, upper, isf.inputs)


def _isop_pipeline(isf: Isf, eliminate: bool):
    """The single implementation behind both ``isop`` minimisers.

    Returns the full ``(cover, node)`` pair so the memo layer can store
    the cover this pipeline computes anyway; :func:`minimize_isop`
    keeps only the node.  Being the one copy is load-bearing: the memo
    transparency invariant requires the memo-on miss path and the plain
    path to run literally the same computation.
    """
    if eliminate:
        isf = eliminate_nonessential_variables(isf)
    # Dispatch through the backend protocol: BddManager.isop runs the
    # shared expansion, TableManager.isop replays it on raw tables
    # (identical covers, no per-node interning).
    return isf.mgr.isop(isf.on, isf.upper)


def minimize_isop(isf: Isf, eliminate: bool = True) -> int:
    """The paper's chosen pipeline: variable elimination then ISOP."""
    return _isop_pipeline(isf, eliminate)[1]


def minimize_isop_no_elimination(isf: Isf) -> int:
    """ISOP without the elimination pre-pass (Table 1 ablation)."""
    return minimize_isop(isf, eliminate=False)


def minimize_constrain(isf: Isf) -> int:
    """Generalized-cofactor (constrain) minimisation [13, 14]."""
    care = isf.mgr.not_(isf.dc)
    if care == FALSE:
        return TRUE
    return constrain(isf.mgr, isf.on, care)


def minimize_restrict(isf: Isf) -> int:
    """Generalized-cofactor (restrict) minimisation [13, 14]."""
    care = isf.mgr.not_(isf.dc)
    if care == FALSE:
        return TRUE
    return restrict(isf.mgr, isf.on, care)


def minimize_licompact(isf: Isf) -> int:
    """Safe interval minimisation (LICompact stand-in, see DESIGN.md §4)."""
    return squeeze(isf.mgr, isf.on, isf.upper)


def minimize_exact_cubes(isf: Isf) -> int:
    """Exact minimum-cube implementation by exhaustive search.

    Only usable for tiny supports (the test oracle and the paper's "exact
    mode" requirement that the ISF minimiser itself be exact).  Complexity
    is exponential in the DC count.
    """
    mgr = isf.mgr
    isf = eliminate_nonessential_variables(isf)
    support = sorted(set(mgr.support(isf.on)) | set(mgr.support(isf.upper)))
    dc_minterms = list(mgr.minterms(isf.dc, support))
    if len(dc_minterms) > 12:
        raise ValueError("exact ISF minimisation limited to <= 12 DC points")
    best_node = None
    best_key = None
    for mask in range(1 << len(dc_minterms)):
        node = isf.on
        for bit, value in enumerate(dc_minterms):
            if (mask >> bit) & 1:
                node = mgr.or_(node, mgr.minterm(support, value))
        cover, cover_node = isop(mgr, node, node)
        key = (len(cover), sum(len(c) for c in cover))
        if best_key is None or key < best_key:
            best_key, best_node = key, cover_node
    return best_node


#: Registry used by the Table 1 benchmark and the solver options.
MINIMIZERS: Dict[str, IsfMinimizer] = {
    "isop": minimize_isop,
    "isop-noelim": minimize_isop_no_elimination,
    "constrain": minimize_constrain,
    "restrict": minimize_restrict,
    "licompact": minimize_licompact,
    "exact": minimize_exact_cubes,
}


def get_minimizer(name: str) -> IsfMinimizer:
    """Look up a minimiser by registry name."""
    try:
        return MINIMIZERS[name]
    except KeyError:
        raise ValueError("unknown ISF minimizer %r (available: %s)"
                         % (name, ", ".join(sorted(MINIMIZERS)))) from None


#: Minimisers the memo store may serve across subproblem renamings.
#: All of them are *structural* — they compute by Shannon recursion on
#: the interval BDDs, so they commute with any order-preserving renaming
#: of the support, which is exactly what makes a normalised-signature
#: memo hit transparent.  Custom registered minimisers carry no such
#: guarantee and therefore bypass the store.
_STRUCTURAL_MINIMIZER_NAMES = ("isop", "isop-noelim", "constrain",
                               "restrict", "licompact", "exact")


def minimizer_memo_key(minimizer: IsfMinimizer) -> Optional[str]:
    """The memo-key name of a minimiser, or ``None`` to bypass the memo.

    Only the built-in structural minimisers are memo-safe (see
    :data:`_STRUCTURAL_MINIMIZER_NAMES`); the identity check tolerates
    re-registration under extra names because keys are resolved from
    the callable, not the request string.
    """
    for name in _STRUCTURAL_MINIMIZER_NAMES:
        if MINIMIZERS.get(name) is minimizer:
            return name
    return None


def _run_with_cover(isf: Isf, minimizer: IsfMinimizer,
                    minimizer_name: str) -> Tuple[int, VarCover]:
    """Run a structural minimiser, also returning an ISOP cover.

    The cover (at variable level) disjoins exactly to the returned node
    — callers turn it into rank templates for the memo store without a
    second cover extraction.  The ``isop`` minimisers share
    :func:`_isop_pipeline`, which computes a cover anyway
    (:func:`minimize_isop` normally discards it); the
    generalized-cofactor/interval minimisers pay one ``isop`` over the
    exact result, but only on memo misses.
    """
    if minimizer_name == "isop":
        cover, node = _isop_pipeline(isf, eliminate=True)
    elif minimizer_name == "isop-noelim":
        cover, node = _isop_pipeline(isf, eliminate=False)
    else:
        node = minimizer(isf)
        cover, _ = isop(isf.mgr, node, node)
    return node, tuple(tuple(sorted(cube.items())) for cube in cover)


def minimize_with_cover(isf: Isf, minimizer: IsfMinimizer,
                        memo: Optional[MemoStore],
                        minimizer_name: str,
                        route=None) -> Tuple[int, VarCover]:
    """Memoised minimisation returning ``(node, variable-level cover)``.

    The cover lets callers assemble whole-solution templates (one cover
    per output, renumbered to the *relation's* support) without
    re-extracting anything.  ``route`` is an optional in-recursion
    router hook (``SubproblemRouter.minimize``-shaped): consulted on
    memo misses, it may serve the minimisation from the table kernel —
    byte-identical by the same transparency argument as a memo hit —
    and its result is stored in the memo exactly like a fresh run, so
    templates minted on the table kernel replay in BDD-only solves.
    ``memo=None`` skips memoisation (routing still applies).
    """
    sig = isf.signature()
    key = ("isf", sig.key, minimizer_name)
    template = memo.get(key) if memo is not None else None
    if template is not None:
        cover = var_cover_from_template(template, sig.support)
        return instantiate_var_cover(isf.mgr, cover), cover
    if route is not None:
        served = route(isf, minimizer, minimizer_name)
    else:
        served = None
    if served is None:
        node, cover = _run_with_cover(isf, minimizer, minimizer_name)
    else:
        node, cover = served
    if memo is not None:
        rank_of_var = sig.rank_map()
        memo.put_if_mappable(
            key, lambda: template_from_var_cover(cover, rank_of_var))
    return node, cover


def minimize_memoised(isf: Isf, minimizer: IsfMinimizer,
                      memo: Optional[MemoStore],
                      minimizer_name: Optional[str] = None,
                      route=None) -> int:
    """Minimise one ISF through the shared memo store.

    A hit re-instantiates the stored rank cover over the ISF's own
    support — byte-identical to a fresh run of the (structural)
    minimiser; a miss runs the minimiser and stores its result.
    ``minimizer_name`` lets hot loops pre-resolve
    :func:`minimizer_memo_key`; unnamed (custom) minimisers bypass the
    store entirely.  ``route`` is the in-recursion router hook of
    :func:`minimize_with_cover` (only structural minimisers reach it).
    """
    if memo is None and route is None:
        return minimizer(isf)
    if minimizer_name is None:
        minimizer_name = minimizer_memo_key(minimizer)
        if minimizer_name is None:
            return minimizer(isf)
    return minimize_with_cover(isf, minimizer, memo, minimizer_name,
                               route=route)[0]


def solve_misf(misf, minimizer: IsfMinimizer = minimize_isop, *,
               memo: Optional[MemoStore] = None, route=None) -> List[int]:
    """Minimise every component of an MISF independently (paper §5.3).

    ``memo`` threads each component minimisation through a shared
    :class:`~repro.core.memo.MemoStore` so identical (up to renaming)
    ISFs across subrelations, solves and sessions are minimised once;
    ``route`` additionally lets narrow components be computed on the
    table kernel (see :func:`minimize_with_cover`).
    """
    if memo is None and route is None:
        return [minimizer(component) for component in misf]
    name = minimizer_memo_key(minimizer)
    if name is None:
        return [minimizer(component) for component in misf]
    return [minimize_with_cover(component, minimizer, memo, name,
                                route=route)[0]
            for component in misf]
