"""The paper's primary contribution: Boolean relations and the BREL solver."""

from .brel import BrelOptions, BrelResult, BrelSolver, solve_exactly, solve_relation
from .cost import (bdd_size_cost, bdd_size_squared_cost, cube_count_cost,
                   literal_count_cost, shared_bdd_size_cost, weighted_cost)
from .exact import (assignment_to_functions, count_compatible_functions,
                    enumerate_compatible_functions, exact_solve)
from .explore import (EVENT_KINDS, STRATEGIES, BeamStrategy,
                      BestFirstStrategy, CancelToken, ExplorationStrategy,
                      FifoStrategy, Improvement, LifoStrategy, SearchNode,
                      SolveEvent, get_strategy_factory, make_strategy,
                      strategy_names)
from .isf import Isf, Misf
from .minimize import (MINIMIZERS, eliminate_nonessential_variables,
                       get_minimizer, minimize_constrain, minimize_exact_cubes,
                       minimize_isop, minimize_isop_no_elimination,
                       minimize_licompact, minimize_restrict, solve_misf)
from .quick import quick_solve
from .relation import BooleanRelation, NotWellDefinedError
from .relio import (RelationFormatError, load_relation, parse_relation,
                    peek_shape, save_relation, write_relation)
from .solution import Solution, SolverStats
from .split import SplitChoice, select_split, select_split_from_conflicts
from .symmetry import (E, NE, SymmetryCache, output_symmetries,
                       symmetric_images)

__all__ = [
    "BeamStrategy",
    "BestFirstStrategy",
    "BrelOptions",
    "BrelResult",
    "BrelSolver",
    "BooleanRelation",
    "CancelToken",
    "E",
    "EVENT_KINDS",
    "ExplorationStrategy",
    "FifoStrategy",
    "Improvement",
    "LifoStrategy",
    "STRATEGIES",
    "SearchNode",
    "SolveEvent",
    "Isf",
    "MINIMIZERS",
    "Misf",
    "NE",
    "NotWellDefinedError",
    "Solution",
    "SolverStats",
    "SplitChoice",
    "SymmetryCache",
    "assignment_to_functions",
    "bdd_size_cost",
    "bdd_size_squared_cost",
    "count_compatible_functions",
    "cube_count_cost",
    "eliminate_nonessential_variables",
    "enumerate_compatible_functions",
    "exact_solve",
    "get_minimizer",
    "get_strategy_factory",
    "make_strategy",
    "strategy_names",
    "literal_count_cost",
    "minimize_constrain",
    "minimize_exact_cubes",
    "minimize_isop",
    "minimize_isop_no_elimination",
    "minimize_licompact",
    "minimize_restrict",
    "output_symmetries",
    "parse_relation",
    "peek_shape",
    "load_relation",
    "save_relation",
    "write_relation",
    "RelationFormatError",
    "quick_solve",
    "select_split",
    "select_split_from_conflicts",
    "shared_bdd_size_cost",
    "solve_exactly",
    "solve_misf",
    "solve_relation",
    "symmetric_images",
    "weighted_cost",
]
