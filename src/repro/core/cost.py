"""Cost functions guiding the BREL search (paper Section 7.3).

The solver accepts any callable ``cost(mgr, functions) -> float`` where
``functions`` is the candidate multiple-output function as a sequence of
BDD nodes.  The paper uses two BDD-based costs:

* the **sum of BDD sizes** when targeting area, and
* the **sum of squared BDD sizes** when targeting delay — squaring biases
  the search toward balanced functions, evening out path depths.

Cube- and literal-count costs (the objectives of the exact solver [6] and
gyocro [33]) are provided for the Table 2 comparison.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..bdd.backend import FunctionBackend
from ..bdd.isop import isop

#: The cost-function signature used throughout the solver.  Costs are
#: measured through the backend protocol, so a candidate prices the
#: same whichever engine (BDD or truth table) produced it — ``size``
#: always means reduced-BDD node count.
CostFunction = Callable[[FunctionBackend, Sequence[int]], float]


def bdd_size_cost(mgr: FunctionBackend, functions: Sequence[int]) -> float:
    """Sum of per-output BDD sizes — the paper's area-oriented cost."""
    return float(sum(mgr.size(func) for func in functions))


def bdd_size_squared_cost(mgr: FunctionBackend, functions: Sequence[int]) -> float:
    """Sum of squared BDD sizes — the paper's delay-oriented cost.

    Squaring penalises a lopsided split of complexity across the outputs,
    favouring balanced solutions whose mapped logic has more even path
    delays (paper §7.3 and §10.2).
    """
    return float(sum(mgr.size(func) ** 2 for func in functions))


def shared_bdd_size_cost(mgr: FunctionBackend, functions: Sequence[int]) -> float:
    """DAG size of the whole vector, counting shared nodes once."""
    return float(mgr.shared_size(list(functions)))


def cube_count_cost(mgr: FunctionBackend, functions: Sequence[int]) -> float:
    """Number of ISOP product terms summed over the outputs.

    This is the objective of the exact minimiser of Brayton/Somenzi [6]
    and (primarily) of gyocro; provided for like-for-like comparisons.
    """
    total = 0
    for func in functions:
        cover, _ = isop(mgr, func, func)
        total += len(cover)
    return float(total)


def literal_count_cost(mgr: FunctionBackend, functions: Sequence[int]) -> float:
    """Number of ISOP literals summed over the outputs (gyocro tie-break)."""
    total = 0
    for func in functions:
        cover, _ = isop(mgr, func, func)
        total += sum(len(cube) for cube in cover)
    return float(total)


def weighted_cost(size_weight: float = 1.0, cube_weight: float = 0.0,
                  literal_weight: float = 0.0) -> CostFunction:
    """Build a custom blend of the base metrics.

    Demonstrates the "customisable cost function" knob the paper
    highlights as a differentiator over Herb/gyocro.
    """

    def cost(mgr: FunctionBackend, functions: Sequence[int]) -> float:
        value = 0.0
        if size_weight:
            value += size_weight * bdd_size_cost(mgr, functions)
        if cube_weight:
            value += cube_weight * cube_count_cost(mgr, functions)
        if literal_weight:
            value += literal_weight * literal_count_cost(mgr, functions)
        return value

    return cost
