"""Output-variable symmetries and the processed-relation cache (§7.7).

Two output variables are *non-equivalence* (NE) symmetric in a relation
when swapping them leaves the characteristic function unchanged
(``R|y_i=0,y_j=1 == R|y_i=1,y_j=0``) and *equivalence* (E) symmetric when
the double complement does (``R|y_i=0,y_j=0 == R|y_i=1,y_j=1``).

BREL uses symmetries to prune the branch-and-bound tree: two subrelations
that are images of each other under a symmetry of the *original* relation
have solution sets of identical cost (for any cost function invariant
under renaming outputs, which the BDD-size family is), so only one branch
needs exploring.  Following the paper's implementation decisions:

* only **output** variables are considered;
* only the relation-preserving (non-skew) transform types generate cache
  probes — the skew types complement the characteristic function, which
  does not map a relation to an equivalent relation-solving problem;
* the check is applied only near the top of the recursion
  (``max_depth``), because deep subrelations are cheap to solve directly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..bdd.manager import BddManager
from .relation import BooleanRelation

#: Symmetry kinds detected for an output pair.
NE = "nonequivalence"
E = "equivalence"


def output_symmetries(relation: BooleanRelation
                      ) -> List[Tuple[int, int, str]]:
    """Detect first-order symmetric output pairs of a relation.

    Returns triples ``(i, j, kind)`` over output *positions* with
    ``i < j`` and ``kind`` in {:data:`NE`, :data:`E`}.
    """
    mgr = relation.mgr
    node = relation.node
    result: List[Tuple[int, int, str]] = []
    outputs = relation.outputs
    for i in range(len(outputs)):
        for j in range(i + 1, len(outputs)):
            vi, vj = outputs[i], outputs[j]
            f00 = mgr.cofactor(mgr.cofactor(node, vi, False), vj, False)
            f01 = mgr.cofactor(mgr.cofactor(node, vi, False), vj, True)
            f10 = mgr.cofactor(mgr.cofactor(node, vi, True), vj, False)
            f11 = mgr.cofactor(mgr.cofactor(node, vi, True), vj, True)
            if f01 == f10:
                result.append((i, j, NE))
            if f00 == f11:
                result.append((i, j, E))
    return result


def symmetric_images(relation: BooleanRelation,
                     pairs: Sequence[Tuple[int, int, str]]) -> Set[int]:
    """Characteristic-function nodes of all single-pair symmetric images.

    For an NE pair the image swaps the two output variables; for an E pair
    it swaps them with complementation (``y_i := ~y_j, y_j := ~y_i``).
    """
    mgr = relation.mgr
    images: Set[int] = set()
    for i, j, kind in pairs:
        vi, vj = relation.outputs[i], relation.outputs[j]
        if kind == NE:
            images.add(mgr.swap_vars(relation.node, vi, vj))
        else:
            images.add(mgr.vector_compose(relation.node, {
                vi: mgr.not_(mgr.var(vj)),
                vj: mgr.not_(mgr.var(vi)),
            }))
    images.discard(relation.node)
    return images


class SymmetryCache:
    """Cache of processed relations, probed through symmetry transforms.

    The cache records characteristic-function node ids (hash-consing makes
    node identity function identity).  ``should_prune`` answers whether an
    equivalent relation was already processed, and records the new one
    otherwise.
    """

    def __init__(self, original: BooleanRelation, max_depth: int = 2) -> None:
        self.pairs = output_symmetries(original)
        self.max_depth = max_depth
        self._seen: Set[int] = set()
        self.probes = 0
        self.hits = 0

    @property
    def has_symmetries(self) -> bool:
        return bool(self.pairs)

    def should_prune(self, relation: BooleanRelation, depth: int) -> bool:
        """True when a symmetric image of ``relation`` was processed.

        Beyond ``max_depth`` the check is skipped entirely (the paper's
        "symmetries are only explored during the initial recursions").
        """
        if not self.pairs or depth > self.max_depth:
            return False
        self.probes += 1
        if relation.node in self._seen:
            self.hits += 1
            return True
        for image in symmetric_images(relation, self.pairs):
            if image in self._seen:
                self.hits += 1
                return True
        self._seen.add(relation.node)
        return False
