"""Exhaustive reference solver for small relations.

Enumerates *every* compatible multiple-output function of a well-defined
relation and returns the cheapest.  Exponential in both the input count
and the per-vertex flexibility — strictly a test oracle and a ground-truth
generator for the paper's "exact mode" claims on small instances.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Sequence, Tuple

from .cost import CostFunction, bdd_size_cost
from .relation import BooleanRelation
from .solution import Solution


def count_compatible_functions(relation: BooleanRelation) -> int:
    """The product over input vertices of their output-set sizes."""
    total = 1
    for _, outputs in relation.rows():
        total *= len(outputs)
    return total


def enumerate_compatible_functions(relation: BooleanRelation
                                   ) -> Iterator[Tuple[int, ...]]:
    """Yield compatible functions as tuples ``value[x] = y``.

    Entry ``x`` of each tuple is the (integer-encoded) output vertex chosen
    for input vertex ``x``.
    """
    relation.require_well_defined()
    choices: List[List[int]] = [sorted(outputs)
                                for _, outputs in relation.rows()]
    yield from itertools.product(*choices)


def assignment_to_functions(relation: BooleanRelation,
                            assignment: Sequence[int]) -> Tuple[int, ...]:
    """Convert a per-vertex output choice into per-output BDD nodes."""
    mgr = relation.mgr
    functions = []
    for j in range(len(relation.outputs)):
        minterms = [x for x, y in enumerate(assignment) if (y >> j) & 1]
        functions.append(mgr.from_minterms(list(relation.inputs), minterms))
    return tuple(functions)


def exact_solve(relation: BooleanRelation,
                cost_function: CostFunction = bdd_size_cost,
                limit: int = 1 << 16) -> Solution:
    """Optimal solution by exhaustive enumeration.

    Raises ``ValueError`` when the compatible-function count exceeds
    ``limit`` (protecting against accidental exponential blow-up).
    """
    total = count_compatible_functions(relation)
    if total > limit:
        raise ValueError("relation has %d compatible functions; "
                         "limit is %d" % (total, limit))
    best: Solution = None  # type: ignore[assignment]
    for assignment in enumerate_compatible_functions(relation):
        functions = assignment_to_functions(relation, assignment)
        cost = cost_function(relation.mgr, functions)
        if best is None or cost < best.cost:
            best = Solution(relation.mgr, functions, cost)
    return best
