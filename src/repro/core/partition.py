"""Output-block decomposition: shard a relation into sub-relations.

The paper's recursive paradigm splits a relation into per-output ISFs
for *minimisation*, but the BREL search itself still walks one
monolithic semi-lattice even when outputs fall into groups with
disjoint input supports that can never conflict with each other.
Following the decomposition lever of "Towards Parallel Boolean
Functional Synthesis" (Akshay et al.) — and driving the split from a
dependency graph as in "Analysis of Boolean Equation Systems through
Structure Graphs" — this module turns one
:class:`~repro.core.relation.BooleanRelation` into an equivalent set of
*independent* sub-relations that can be solved separately (serially or
in parallel) and recombined:

1. build the **output–input support graph**: output ``j`` is adjacent
   to input ``x`` when the projection of the relation onto
   ``(X, y_j)`` depends on ``x``;
2. its connected components are the candidate **output blocks**;
3. **verify separability**: candidate blocks are only structural — two
   outputs with disjoint input supports can still be coupled *through
   the relation* (e.g. ``R = (y_0 ⇔ y_1)`` has empty input supports but
   inseparable outputs).  A partition is used only when
   ``R == ∧_B (∃ Y∖Y_B . R)`` holds exactly; blocks that fail are
   merged (a peel loop keeps every block that *is* independent of the
   rest).
4. produce a :class:`Partition`: one sub-relation per block, each over
   the block's own support frame, plus the recombiner that stitches
   per-block solutions back into a full function vector.

Separability makes decomposition *transparent*: every solution of ``R``
restricts to a solution of each block, and any combination of per-block
solutions is a solution of ``R``, so solving blocks independently
explores exactly the same solution space with exponentially smaller
search trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..bdd.manager import TRUE
from .memo import cover_template, instantiate_cover
from .relation import BooleanRelation
from .solution import Solution, SolverStats


@dataclass(frozen=True)
class Block:
    """One independent sub-relation of a partitioned relation.

    Attributes
    ----------
    index:
        Position of this block inside :attr:`Partition.blocks` (the
        fixed serial solve order).
    positions:
        Output *positions* of the parent relation this block owns, in
        ascending order.
    relation:
        The sub-relation: same manager as the parent, inputs restricted
        to the block's input support (parent order preserved), outputs
        ``parent.outputs[p] for p in positions``, characteristic
        function ``∃ Y∖Y_B . R``.
    """

    index: int
    positions: Tuple[int, ...]
    relation: BooleanRelation

    def describe(self) -> Dict[str, Any]:
        """Structural summary (JSON-ready) of this block."""
        return {
            "outputs": list(self.positions),
            "num_inputs": len(self.relation.inputs),
            "num_outputs": len(self.relation.outputs),
        }


@dataclass(frozen=True)
class Partition:
    """A verified decomposition of one relation into output blocks.

    ``blocks`` are ordered by their smallest output position — the
    *fixed serial order* referenced throughout the decomposition
    contract: solving the blocks in this order (serially, with the same
    options) is deterministic, and parallel dispatch recombines by
    output position so completion order never matters.

    A *trivial* partition (one block, ``separable=False``) means the
    relation could not be sharded; its single block is the original
    relation unchanged.
    """

    relation: BooleanRelation
    blocks: Tuple[Block, ...]
    separable: bool

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def is_trivial(self) -> bool:
        """True when decomposition found nothing to shard."""
        return len(self.blocks) <= 1

    def recombine_functions(
            self, block_functions: Sequence[Sequence[int]]
            ) -> Tuple[int, ...]:
        """Stitch per-block function vectors into the full vector.

        ``block_functions[i]`` is the solved vector of ``blocks[i]``
        (one BDD node per block output, in block output order, in the
        parent's manager).  Returns one node per parent output.
        """
        if len(block_functions) != len(self.blocks):
            raise ValueError("expected %d block function vectors, got %d"
                             % (len(self.blocks), len(block_functions)))
        functions: List[Optional[int]] = [None] * len(
            self.relation.outputs)
        for block, funcs in zip(self.blocks, block_functions):
            if len(funcs) != len(block.positions):
                raise ValueError(
                    "block %d solves %d outputs but %d functions were "
                    "supplied" % (block.index, len(block.positions),
                                  len(funcs)))
            for position, func in zip(block.positions, funcs):
                functions[position] = func
        return tuple(func for func in functions if func is not None)

    def recombine_solutions(self, block_solutions: Sequence[Solution],
                            cost_function) -> Solution:
        """Stitch per-block :class:`Solution`\\ s into a full solution.

        The recombined cost is recomputed with ``cost_function`` on the
        full vector; for per-output-additive costs (every built-in
        except the shared-size cost) this equals the sum of the block
        costs.
        """
        functions = self.recombine_functions(
            [solution.functions for solution in block_solutions])
        return Solution(self.relation.mgr, functions,
                        cost_function(self.relation.mgr, functions))

    def summary(self) -> Dict[str, Any]:
        """Structural summary (JSON-ready) of the whole partition."""
        return {
            "num_blocks": len(self.blocks),
            "separable": self.separable,
            "blocks": [block.describe() for block in self.blocks],
        }


def support_components(supports: Sequence[Sequence[int]]
                       ) -> List[List[int]]:
    """Connected components of the output–input support graph.

    ``supports[j]`` is the input support of output ``j``; two outputs
    are connected when their supports intersect.  Returns the
    components as sorted lists of output positions, ordered by their
    smallest member.  Outputs with empty support form singleton
    components (they constrain no input and, pending separability
    verification, no other output).
    """
    parent = list(range(len(supports)))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    owner: Dict[int, int] = {}
    for position, support in enumerate(supports):
        for var in support:
            if var in owner:
                root_a, root_b = find(owner[var]), find(position)
                if root_a != root_b:
                    parent[max(root_a, root_b)] = min(root_a, root_b)
            else:
                owner[var] = position
    components: Dict[int, List[int]] = {}
    for position in range(len(supports)):
        components.setdefault(find(position), []).append(position)
    return [components[root] for root in sorted(components)]


def _trivial(relation: BooleanRelation) -> Partition:
    """The no-op partition: one block, the relation itself."""
    block = Block(0, tuple(range(len(relation.outputs))), relation)
    return Partition(relation, (block,), separable=False)


def _block_projection(relation: BooleanRelation,
                      positions: Sequence[int]) -> int:
    """``∃ Y∖Y_B . R`` — the relation projected onto one output block."""
    keep = set(positions)
    others = [var for position, var in enumerate(relation.outputs)
              if position not in keep]
    return relation.mgr.exists(relation.node, others)


def _sub_relation(relation: BooleanRelation, positions: Sequence[int],
                  node: int) -> BooleanRelation:
    """Build the block sub-relation over its own support frame.

    Inputs are restricted to the variables ``node`` actually mentions
    (parent order preserved) so block signatures normalise tightly —
    smaller frames raise the isomorphic-template hit rate in the
    session :class:`~repro.core.memo.MemoStore`.
    """
    support = set(relation.mgr.support(node))
    inputs = [var for var in relation.inputs if var in support]
    outputs = [relation.outputs[position] for position in positions]
    return BooleanRelation(relation.mgr, inputs, outputs, node)


def partition_relation(relation: BooleanRelation) -> Partition:
    """Decompose a relation into verified-independent output blocks.

    Builds the output–input support graph, takes its connected
    components as candidate blocks, and verifies separability exactly:
    the candidate partition is used only when the conjunction of the
    block projections reproduces ``R`` node for node.  When the global
    check fails (outputs coupled through the relation despite disjoint
    supports), a peel loop keeps every block that is individually
    independent of the rest and merges whatever remains.  Relations
    with fewer than two outputs, a single component, or inseparable
    couplings come back as the trivial partition.

    The result is deterministic: blocks are ordered by smallest output
    position, and every step is a canonical BDD operation.
    """
    mgr = relation.mgr
    num_outputs = len(relation.outputs)
    if num_outputs < 2:
        return _trivial(relation)
    supports = [relation.output_support(position)
                for position in range(num_outputs)]
    candidates = support_components(supports)
    if len(candidates) < 2:
        return _trivial(relation)

    projections = {tuple(block): _block_projection(relation, block)
                   for block in candidates}
    conjunction = TRUE
    for block in candidates:
        conjunction = mgr.and_(conjunction, projections[tuple(block)])
    if conjunction == relation.node:
        final = candidates
    else:
        # Some candidate blocks are coupled through the relation.  Peel
        # off every block B that is provably independent of the rest
        # (R' == P_B ∧ ∃Y_B.R'), then merge the inseparable remainder.
        final = []
        remaining = list(candidates)
        rest_node = relation.node
        peeled = True
        while peeled and len(remaining) >= 2:
            peeled = False
            for block in remaining:
                block_vars = [relation.outputs[p] for p in block]
                without = mgr.exists(rest_node, block_vars)
                joined = mgr.and_(projections[tuple(block)], without)
                if joined == rest_node:
                    final.append(block)
                    rest_node = without
                    remaining.remove(block)
                    peeled = True
                    break
        if not final:
            return _trivial(relation)
        merged = sorted(position for block in remaining
                        for position in block)
        if merged:
            projections[tuple(merged)] = rest_node
            final.append(merged)
        final.sort(key=lambda block: block[0])

    blocks = tuple(
        Block(index, tuple(block),
              _sub_relation(relation, block, projections[tuple(block)]))
        for index, block in enumerate(final))
    return Partition(relation, blocks, separable=True)


#: Severity order of per-block completion reasons; the aggregate
#: ``stopped`` of a sharded solve is the worst reason any block hit.
_STOP_PRIORITY = {"exhausted": 0, "budget": 1, "timeout": 2,
                  "cancelled": 3}


def worst_stopped(reasons: Sequence[str]) -> str:
    """Aggregate per-block ``stopped`` reasons for the whole solve.

    ``cancelled`` beats ``timeout`` beats ``budget`` beats
    ``exhausted``; an empty sequence is ``exhausted`` (nothing was cut
    short).  Unknown reasons rank worst-possible so a future reason is
    never silently demoted to ``exhausted``.
    """
    worst = "exhausted"
    rank = 0
    for reason in reasons:
        value = _STOP_PRIORITY.get(reason, len(_STOP_PRIORITY))
        if value > rank:
            worst, rank = reason, value
    return worst


def merge_block_stats(block_stats: Sequence[SolverStats]) -> SolverStats:
    """Sum per-block solver counters into whole-solve stats.

    Additive counters sum; ``bdd_nodes`` (a point-in-time gauge of the
    shared manager) takes the maximum; ``runtime_seconds`` is left at
    zero for the caller to overwrite with the wall clock of the whole
    sharded solve (the sum of block runtimes would double-count wall
    time under parallel dispatch).
    """
    total = SolverStats()
    for stats in block_stats:
        total.relations_explored += stats.relations_explored
        total.misf_minimizations += stats.misf_minimizations
        total.splits += stats.splits
        total.cost_prunes += stats.cost_prunes
        total.symmetry_prunes += stats.symmetry_prunes
        total.quick_solutions += stats.quick_solutions
        total.compatible_found += stats.compatible_found
        total.frontier_overflow += stats.frontier_overflow
        total.frontier_prunes += stats.frontier_prunes
        total.bdd_nodes = max(total.bdd_nodes, stats.bdd_nodes)
        total.bdd_cache_hits += stats.bdd_cache_hits
        total.bdd_cache_misses += stats.bdd_cache_misses
        total.memo_hits += stats.memo_hits
        total.memo_misses += stats.memo_misses
        total.memo_stores += stats.memo_stores
        total.subproblems_routed += stats.subproblems_routed
        total.route_conversions += stats.route_conversions
        total.route_hits += stats.route_hits
    return total


def block_functions_from_pla(mgr, pla_text: str,
                             inputs: Sequence[int],
                             outputs: Sequence[int]) -> Tuple[int, ...]:
    """Rebuild a worker's solved block functions into ``mgr``.

    Parallel block dispatch ships each block to a worker as PLA text
    and gets the solution back as the PLA of its functional relation
    (BDD handles cannot cross the process boundary).  This parses that
    text into a scratch manager, extracts the per-output functions, and
    re-instantiates them over the block's variables in the parent
    manager via canonical ISOP covers — byte-identical to solving the
    block in-process, by the same ROBDD-canonicity argument the memo
    templates rely on.
    """
    from .relio import parse_relation
    functional = parse_relation(pla_text)
    if (len(functional.inputs) != len(inputs)
            or len(functional.outputs) != len(outputs)):
        raise ValueError("solution PLA frame %dx%d does not match the "
                         "block frame %dx%d"
                         % (len(functional.inputs),
                            len(functional.outputs),
                            len(inputs), len(outputs)))
    rank_of_var = {var: rank
                   for rank, var in enumerate(functional.inputs)}
    return tuple(
        instantiate_cover(
            mgr, cover_template(functional.mgr, func, rank_of_var),
            inputs)
        for func in functional.function_vector())
