"""Cross-layer memoisation of solved subproblems.

BREL's recursive paradigm repeatedly projects, splits and re-solves
sub-relations, and on structured instances many of those subproblems are
*isomorphic up to variable renaming* — symmetric outputs, shifted
supports, and above all repeated traffic: the same spec solved again and
again through one :class:`~repro.api.Session`.  This module supplies the
shared vocabulary every layer uses to recognise and reuse them:

* :class:`Signature` — the canonical identity of a subproblem, built on
  :meth:`repro.bdd.BddManager.fingerprints` with the support renumbered
  to ``0..k-1`` (order-preserving, so BDD structure is preserved).
  :meth:`repro.core.Isf.signature` and
  :meth:`repro.core.BooleanRelation.signature` produce them.
* **Solution templates** — manager-independent renderings of solved
  functions as ISOP covers over support *ranks*
  (:func:`solution_template`), re-instantiated into any manager by
  mapping rank ``i`` back to the ``i``-th support variable of the
  querying subproblem (:func:`instantiate_solution`).  Because reduced
  ordered BDDs are canonical, re-instantiating a template rebuilds
  *exactly* the function the original solve produced (renamed by the
  order-preserving support map), so memoisation is transparent: results
  with the store on are byte-identical to results with it off.
* :class:`MemoStore` — the bounded, LRU-evicting store itself, shared
  by :func:`repro.core.quick_solve`, :func:`repro.core.solve_misf`, the
  :class:`~repro.core.BrelSolver` loop, and (through
  :class:`~repro.api.Session`) every solve and batch job of a session.

Transparency rests on the built-in ISF minimisers being *structural*:
they compute by Shannon recursion over the BDDs, so they commute with
any order-preserving renaming of the support.  Custom (user-registered)
minimisers carry no such guarantee, so the memo hooks bypass the store
for them (:func:`minimizer_memo_key` returns ``None``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (Any, Dict, Iterable, List, NamedTuple, Optional,
                    Sequence, Tuple)

from ..bdd.isop import isop
from ..bdd.backend import FunctionBackend
from ..bdd.manager import FALSE, TRUE

#: Default entry bound of a :class:`MemoStore`.
DEFAULT_MEMO_CAPACITY = 4096

#: A cube over support ranks: ``((rank, polarity), ...)`` sorted by rank.
RankCube = Tuple[Tuple[int, bool], ...]
#: An ISOP cover over support ranks (one solved function).
CoverTemplate = Tuple[RankCube, ...]
#: One cover per output: a solved multiple-output function.
SolutionTemplate = Tuple[CoverTemplate, ...]
#: A cube/cover at concrete variable level (pre-renumbering), the form
#: minimisers hand over so template extraction reuses the ISOP cover
#: they computed anyway instead of re-deriving one.
VarCube = Tuple[Tuple[int, bool], ...]
VarCover = Tuple[VarCube, ...]


class Signature(NamedTuple):
    """Canonical identity of a subproblem plus its concrete support.

    ``key`` is the hashable, renaming-invariant identity used as (part
    of) a :class:`MemoStore` key; ``support`` is the sorted tuple of
    actual variable levels, i.e. the rank -> level map templates are
    instantiated through.  Two subproblems with equal ``key`` are
    identical up to the order-preserving renaming that matches their
    supports rank by rank.
    """

    key: Tuple[Any, ...]
    support: Tuple[int, ...]

    def rank_map(self) -> Dict[int, int]:
        """The inverse of ``support``: variable level -> rank."""
        return {var: rank for rank, var in enumerate(self.support)}


# ----------------------------------------------------------------------
# Solution templates
# ----------------------------------------------------------------------
def cover_template(mgr: FunctionBackend, node: int,
                   rank_of_var: Dict[int, int]) -> CoverTemplate:
    """Render one function as an ISOP cover over support ranks.

    Raises ``KeyError`` when the function mentions a variable outside
    ``rank_of_var`` — callers treat that as "unmemoisable" and skip the
    store (it cannot happen for functions produced by projecting the
    signed subproblem itself).
    """
    cover, _ = isop(mgr, node, node)
    return tuple(tuple(sorted((rank_of_var[var], polarity)
                              for var, polarity in cube.items()))
                 for cube in cover)


def template_from_var_cover(cover: VarCover,
                            rank_of_var: Dict[int, int]) -> CoverTemplate:
    """Renumber a variable-level cover into a rank template.

    Raises ``KeyError`` for out-of-support variables (see
    :func:`cover_template`).
    """
    return tuple(tuple(sorted((rank_of_var[var], polarity)
                              for var, polarity in cube))
                 for cube in cover)


def var_cover_from_template(cover: CoverTemplate,
                            support: Sequence[int]) -> VarCover:
    """The inverse renumbering: rank template back to variable level."""
    return tuple(tuple((support[rank], polarity)
                       for rank, polarity in cube)
                 for cube in cover)


def solution_template(mgr: FunctionBackend, functions: Sequence[int],
                      support: Sequence[int]) -> SolutionTemplate:
    """Render a solved function vector as per-output rank covers."""
    rank_of_var = {var: rank for rank, var in enumerate(support)}
    return tuple(cover_template(mgr, func, rank_of_var)
                 for func in functions)


def instantiate_cover(mgr: FunctionBackend, cover: CoverTemplate,
                      support: Sequence[int]) -> int:
    """Rebuild one rank cover as a BDD node over ``support`` variables.

    By ROBDD canonicity the disjunction of the cover's cubes lands on
    exactly the node the original function would have (renamed through
    the rank -> ``support[rank]`` map), regardless of build order.
    """
    return instantiate_var_cover(mgr,
                                 var_cover_from_template(cover, support))


def instantiate_var_cover(mgr: FunctionBackend, cover: VarCover) -> int:
    """Disjoin a variable-level cover into ``mgr``.

    Cubes are stored sorted by level, so conjoining right-to-left keeps
    every ``and_`` on the manager's literal-above O(1) fast path (no
    ``cube()`` dict round-trip).
    """
    var, nvar = mgr.var, mgr.nvar
    and_, or_ = mgr.and_, mgr.or_
    node = FALSE
    for cube in cover:
        conj = TRUE
        for level, polarity in reversed(cube):
            literal = var(level) if polarity else nvar(level)
            conj = and_(literal, conj)
        node = or_(node, conj)
    return node


def instantiate_solution(mgr: FunctionBackend, covers: SolutionTemplate,
                         support: Sequence[int]) -> Tuple[int, ...]:
    """Rebuild a per-output template into ``mgr``; one node per output."""
    return tuple(instantiate_cover(mgr, cover, support)
                 for cover in covers)


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class MemoStore:
    """A bounded, LRU-evicting table of solved subproblem templates.

    Keys are hashable tuples namespaced by the caller (``"quick"``,
    ``"eval"``, ``"isf"`` + signature key + minimiser name); values are
    manager-independent templates, so one store safely serves solves
    running in *different* managers — and, exported with
    :meth:`export_entries` and re-seeded via the constructor, different
    *processes* (:meth:`repro.api.Session.solve_many` pre-seeds worker
    stores this way).

    ``capacity=None`` removes the bound.  Counters (``hits`` /
    ``misses`` / ``stores`` / ``evictions``) are cumulative;
    :meth:`counters` snapshots the first three so callers can compute
    per-run deltas.
    """

    def __init__(self, capacity: Optional[int] = DEFAULT_MEMO_CAPACITY,
                 entries: Optional[Iterable[Tuple[Any, Any]]] = None
                 ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("memo capacity must be a positive int or "
                             "None (unbounded)")
        self.capacity = capacity
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        if entries is not None:
            self.seed(entries)

    # -- core ----------------------------------------------------------
    def get(self, key: Any) -> Optional[Any]:
        """Counted lookup; a hit refreshes the entry's recency."""
        entries = self._entries
        value = entries.get(key)
        if value is None:
            self.misses += 1
            return None
        entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Any, value: Any) -> None:
        """Insert (or refresh) an entry, evicting LRU past capacity."""
        entries = self._entries
        if key in entries:
            entries[key] = value
            entries.move_to_end(key)
            return
        entries[key] = value
        self.stores += 1
        if self.capacity is not None and len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def put_if_mappable(self, key: Any, build) -> None:
        """Store ``build()``, treating a ``KeyError`` as "unmemoisable".

        The template builders raise ``KeyError`` when a solved function
        mentions a variable outside the signature's support — possible
        only for exotic minimisers, and the single place that policy
        lives is here: such results are silently not stored.
        """
        try:
            self.put(key, build())
        except KeyError:
            pass

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are cumulative)."""
        self._entries.clear()

    def trim(self, target: Optional[int] = None) -> int:
        """Evict least-recently-used entries down to ``target``.

        Default target is half the capacity (half the current size when
        unbounded).  Returns the number of entries evicted.  Templates
        are manager-independent, so engine garbage collection never
        invalidates them — trimming exists purely to hand memory back.
        """
        if target is None:
            target = ((self.capacity if self.capacity is not None
                       else len(self._entries)) // 2)
        evicted = 0
        entries = self._entries
        while len(entries) > target:
            entries.popitem(last=False)
            evicted += 1
        self.evictions += evicted
        return evicted

    # -- stats ---------------------------------------------------------
    def counters(self) -> Tuple[int, int, int]:
        """``(hits, misses, stores)`` snapshot for per-run deltas."""
        return (self.hits, self.misses, self.stores)

    def absorb_counters(self, hits: int = 0, misses: int = 0,
                        stores: int = 0) -> None:
        """Merge counter deltas observed elsewhere (worker processes)."""
        self.hits += hits
        self.misses += misses
        self.stores += stores

    def stats(self) -> Dict[str, Any]:
        """Snapshot of size and counters (shape mirrors engine stats)."""
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    # -- transport -----------------------------------------------------
    def export_entries(self, limit: Optional[int] = None
                       ) -> List[Tuple[Any, Any]]:
        """The entries as a picklable list, least-recent first.

        ``limit`` keeps only the *most* recent entries — the transport
        payload :meth:`~repro.api.Session.solve_many` ships to worker
        processes is bounded by it.
        """
        items = list(self._entries.items())
        if limit is not None and len(items) > limit:
            items = items[-limit:]
        return items

    def seed(self, entries: Iterable[Tuple[Any, Any]]) -> None:
        """Bulk-load exported entries (not counted as stores).

        Entries past capacity are evicted LRU-first and *are* counted
        as evictions — the counter is the diagnostic for a store too
        small for its traffic, seeded or not.
        """
        store = self._entries
        for key, value in entries:
            store[key] = value
            store.move_to_end(key)
        if self.capacity is not None:
            while len(store) > self.capacity:
                store.popitem(last=False)
                self.evictions += 1


# ----------------------------------------------------------------------
# JSON wire format (the disk tier's transport)
# ----------------------------------------------------------------------
def _tuplify(value: Any) -> Any:
    """Recursively turn JSON arrays back into the tuples keys need."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


def _listify(value: Any) -> Any:
    """Recursively turn tuples into JSON arrays (explicit inverse)."""
    if isinstance(value, (list, tuple)):
        return [_listify(item) for item in value]
    return value


def entries_to_jsonable(entries: Iterable[Tuple[Any, Any]]
                        ) -> List[List[Any]]:
    """Render exported store entries as pure-JSON ``[key, value]`` rows.

    Keys and values are nested tuples of ints, bools, strings and
    ``None`` (signature keys, rank-cover templates), which map onto
    JSON arrays losslessly; :func:`entries_from_jsonable` inverts the
    mapping exactly, so a store round-tripped through JSON — the disk
    cache tier, a prewarming corpus, a network hop — behaves
    identically to the original (same keys, same instantiated
    functions).
    """
    return [[_listify(key), _listify(value)] for key, value in entries]


def entries_from_jsonable(data: Iterable[Any]) -> List[Tuple[Any, Any]]:
    """Parse wire rows back into seedable ``(key, value)`` entry pairs.

    Tolerant by design: the disk tier may hold entries written by an
    older (or newer) code version, or rows a concurrent writer
    truncated.  Malformed rows — not a two-element pair — are skipped
    rather than raised on, and well-formed rows whose *content* this
    version does not recognise are harmless: their keys simply never
    match a lookup, and LRU eviction ages them out.
    """
    entries: List[Tuple[Any, Any]] = []
    for row in data:
        if not isinstance(row, (list, tuple)) or len(row) != 2:
            continue
        key, value = row
        entries.append((_tuplify(key), _tuplify(value)))
    return entries
