"""Two-level (sum-of-products) machinery: cubes, covers, espresso loop."""

from .cover import Cover
from .cube import DASH, ONE, ZERO, Cube
from .espresso import (covers_interval, espresso_isf, expand,
                       expand_single_literal, irredundant, reduce_cover)

__all__ = [
    "Cover",
    "Cube",
    "DASH",
    "ONE",
    "ZERO",
    "covers_interval",
    "espresso_isf",
    "expand",
    "expand_single_literal",
    "irredundant",
    "reduce_cover",
]
