"""Covers: sums of cubes, with the classical two-level operations.

Implements the unate-recursive paradigm primitives from espresso
(reference [8] of the paper): tautology checking, containment, complement,
sharp, and single-cube containment cleanup.  The recursion is the textbook
one — select a binate variable, cofactor, solve the halves — adequate for
the problem sizes of the paper's benchmark suite.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from .cube import DASH, ONE, ZERO, Cube


class Cover:
    """A list of cubes of uniform width, denoting their disjunction."""

    __slots__ = ("width", "cubes")

    def __init__(self, width: int, cubes: Iterable[Cube] = ()) -> None:
        self.width = width
        self.cubes: List[Cube] = []
        for cube in cubes:
            if cube.width != width:
                raise ValueError("cube width %d does not match cover width %d"
                                 % (cube.width, width))
            self.cubes.append(cube)

    # -- constructors ---------------------------------------------------
    @staticmethod
    def from_strings(width: int, rows: Iterable[str]) -> "Cover":
        """Build a cover from ``"1-0"``-style rows."""
        return Cover(width, [Cube.from_str(row) for row in rows])

    @staticmethod
    def empty(width: int) -> "Cover":
        """The empty cover (constant FALSE)."""
        return Cover(width)

    @staticmethod
    def universe(width: int) -> "Cover":
        """The tautology cover (constant TRUE)."""
        return Cover(width, [Cube.universe(width)])

    @staticmethod
    def from_minterms(width: int, values: Iterable[int]) -> "Cover":
        """One minterm cube per integer value."""
        return Cover(width, [Cube.minterm(width, value) for value in values])

    def copy(self) -> "Cover":
        return Cover(self.width, list(self.cubes))

    # -- basic protocol ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def __getitem__(self, index: int) -> Cube:
        return self.cubes[index]

    def __repr__(self) -> str:
        return "Cover(width=%d, cubes=%d)" % (self.width, len(self.cubes))

    def __str__(self) -> str:
        return "\n".join(str(cube) for cube in self.cubes)

    def __eq__(self, other: object) -> bool:
        """Semantic equality (same Boolean function)."""
        if not isinstance(other, Cover):
            return NotImplemented
        return self.contains_cover(other) and other.contains_cover(self)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # -- metrics -----------------------------------------------------------
    def cube_count(self) -> int:
        """Number of product terms (the paper's CB column)."""
        return len(self.cubes)

    def literal_count(self) -> int:
        """Total literal count (the paper's LIT column)."""
        return sum(cube.literal_count() for cube in self.cubes)

    # -- point queries -------------------------------------------------------
    def covers_point(self, point: int) -> bool:
        """Membership test for the minterm encoded by ``point``."""
        return any(cube.covers_point(point) for cube in self.cubes)

    def minterms(self) -> Iterator[int]:
        """Yield covered minterms (ascending, without duplicates)."""
        seen = set()
        for cube in self.cubes:
            for point in cube.minterms():
                seen.add(point)
        yield from sorted(seen)

    # -- structural operations ---------------------------------------------
    def add(self, cube: Cube) -> None:
        """Append a cube (width-checked)."""
        if cube.width != self.width:
            raise ValueError("cube width mismatch")
        self.cubes.append(cube)

    def without(self, index: int) -> "Cover":
        """The cover with the cube at ``index`` removed."""
        return Cover(self.width,
                     [c for i, c in enumerate(self.cubes) if i != index])

    def scc(self) -> "Cover":
        """Single-cube containment: drop cubes covered by another cube."""
        kept: List[Cube] = []
        # Larger cubes first so that containment checks see the keepers.
        order = sorted(self.cubes, key=lambda c: -c.size())
        for cube in order:
            if not any(other.contains(cube) for other in kept):
                kept.append(cube)
        return Cover(self.width, kept)

    def cofactor_cube(self, cube: Cube) -> "Cover":
        """Espresso cofactor of the cover with respect to ``cube``."""
        result = []
        for mine in self.cubes:
            reduced = mine.cofactor(cube)
            if reduced is not None:
                result.append(reduced)
        return Cover(self.width, result)

    def cofactor_var(self, index: int, value: int) -> "Cover":
        """Shannon cofactor on a single variable."""
        pivot = Cube.universe(self.width).set_var(index, value)
        return self.cofactor_cube(pivot)

    # -- unate-recursive predicates -------------------------------------------
    def _select_binate_var(self) -> Optional[int]:
        """Most-binate variable, or None when the cover is unate."""
        best_var = None
        best_score = 0
        for index in range(self.width):
            zeros = sum(1 for cube in self.cubes if cube[index] == ZERO)
            ones = sum(1 for cube in self.cubes if cube[index] == ONE)
            if zeros and ones:
                score = zeros + ones
                if score > best_score:
                    best_score = score
                    best_var = index
        return best_var

    def is_tautology(self) -> bool:
        """Tautology check via the unate-recursive paradigm."""
        if any(cube.is_universe() for cube in self.cubes):
            return True
        if not self.cubes:
            return False
        var = self._select_binate_var()
        if var is None:
            # A unate cover is a tautology iff it has the universal cube
            # (already checked above)... unless some variable column is
            # single-valued everywhere; drop pure don't-care columns by
            # checking a monotone witness point instead.
            return self._unate_tautology()
        return (self.cofactor_var(var, ZERO).is_tautology()
                and self.cofactor_var(var, ONE).is_tautology())

    def _unate_tautology(self) -> bool:
        """Tautology for unate covers.

        For a unate cover, the function is a tautology iff the point
        obtained by setting each positively-unate variable to 0 and each
        negatively-unate variable to 1 (adversarial point) is covered.
        """
        point = 0
        for index in range(self.width):
            has_one = any(cube[index] == ONE for cube in self.cubes)
            has_zero = any(cube[index] == ZERO for cube in self.cubes)
            if has_zero and not has_one:
                point |= 1 << index
        return self.covers_point(point)

    def contains_cube(self, cube: Cube) -> bool:
        """Does the cover contain every minterm of ``cube``?"""
        return self.cofactor_cube(cube).is_tautology()

    def contains_cover(self, other: "Cover") -> bool:
        """Cover containment: ``other <= self``."""
        return all(self.contains_cube(cube) for cube in other.cubes)

    # -- complement / sharp ------------------------------------------------
    def complement(self) -> "Cover":
        """Complement of the cover (recursive Shannon expansion)."""
        if not self.cubes:
            return Cover.universe(self.width)
        if any(cube.is_universe() for cube in self.cubes):
            return Cover.empty(self.width)
        if len(self.cubes) == 1:
            return self._complement_cube(self.cubes[0])
        var = self._select_binate_var()
        if var is None:
            # Unate cover: pick any bound variable of the first bound cube.
            var = next(index for index in range(self.width)
                       if any(cube[index] != DASH for cube in self.cubes))
        neg = self.cofactor_var(var, ZERO).complement()
        pos = self.cofactor_var(var, ONE).complement()
        result = Cover(self.width)
        for cube in neg.cubes:
            result.add(cube.set_var(var, ZERO)
                       if cube[var] == DASH else cube)
        for cube in pos.cubes:
            result.add(cube.set_var(var, ONE)
                       if cube[var] == DASH else cube)
        return result.scc()

    def _complement_cube(self, cube: Cube) -> "Cover":
        """De Morgan complement of a single cube (one cube per literal)."""
        result = Cover(self.width)
        for index, value in enumerate(cube.values):
            if value == ZERO:
                result.add(Cube.universe(self.width).set_var(index, ONE))
            elif value == ONE:
                result.add(Cube.universe(self.width).set_var(index, ZERO))
        return result

    def sharp_cube(self, cube: Cube) -> "Cover":
        """The sharp product ``self # cube`` (points of self not in cube)."""
        result = Cover(self.width)
        for mine in self.cubes:
            if not mine.intersects(cube):
                result.add(mine)
                continue
            # mine # cube: split along each conflicting free position.
            for index in range(self.width):
                if cube[index] == DASH or mine[index] != DASH:
                    continue
                opposite = ZERO if cube[index] == ONE else ONE
                result.add(mine.set_var(index, opposite))
            if cube.contains(mine):
                continue
            # Positions where mine is bound opposite to cube already make
            # them disjoint, handled by the intersects() guard above.
        return result.scc()

    def sharp(self, other: "Cover") -> "Cover":
        """Set difference ``self # other`` as a cover."""
        result = self.copy()
        for cube in other.cubes:
            result = result.sharp_cube(cube)
        return result

    # -- supercube --------------------------------------------------------------
    def supercube(self) -> Optional[Cube]:
        """Smallest cube containing the whole cover (None when empty)."""
        if not self.cubes:
            return None
        acc = self.cubes[0]
        for cube in self.cubes[1:]:
            acc = acc.supercube(cube)
        return acc
