"""An espresso-style two-level minimiser for single-output ISFs.

Implements the reduce / expand / irredundant improvement loop of espresso
(reference [8] of the paper) over :class:`~repro.sop.cover.Cover`.  The
paper's heuristic competitors Herb [18] and gyocro [33] are built around
exactly this loop; the relation-aware variants live in
:mod:`repro.baselines`, while this module handles the plain ISF case
(care interval ``[on, on + dc]``).

The implementation favours clarity over the many espresso engineering
refinements (no MINI-style blocking matrices); covers at the paper's
benchmark scale minimise in milliseconds.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .cover import Cover
from .cube import DASH, Cube


def _off_cover(on: Cover, dc: Cover) -> Cover:
    """Complement of the care upper bound ``on + dc``."""
    union = Cover(on.width, list(on.cubes) + list(dc.cubes))
    return union.complement()


def expand(cover: Cover, off: Cover) -> Cover:
    """Expand every cube against the OFF set, then drop covered cubes.

    Literals are raised greedily in variable order; a raise is kept when
    the enlarged cube still avoids every OFF cube.  This is the
    multi-variable expansion that distinguishes gyocro from Herb
    (paper Section 3).
    """
    expanded: List[Cube] = []
    for cube in sorted(cover.cubes, key=lambda c: -c.size()):
        current = cube
        for index in range(cover.width):
            if current[index] == DASH:
                continue
            candidate = current.raise_var(index)
            if not any(candidate.intersects(blocker) for blocker in off.cubes):
                current = candidate
        expanded.append(current)
    return Cover(cover.width, expanded).scc()


def expand_single_literal(cover: Cover, off: Cover) -> Cover:
    """Expand raising at most one literal per cube (the Herb restriction)."""
    expanded: List[Cube] = []
    for cube in cover.cubes:
        current = cube
        for index in range(cover.width):
            if current[index] == DASH:
                continue
            candidate = current.raise_var(index)
            if not any(candidate.intersects(blocker) for blocker in off.cubes):
                current = candidate
                break
        expanded.append(current)
    return Cover(cover.width, expanded).scc()


def _on_part_within(on: Cover, cube: Cube) -> Cover:
    """The portion of the ON set lying inside ``cube``, as a cover."""
    parts = []
    for on_cube in on.cubes:
        meet = on_cube.intersection(cube)
        if meet is not None:
            parts.append(meet)
    return Cover(on.width, parts)


def irredundant(cover: Cover, on: Cover) -> Cover:
    """Greedily remove cubes while the cover still contains the ON set.

    Cubes are considered smallest-first so that large prime cubes survive.
    """
    cubes = sorted(cover.cubes, key=lambda c: c.size())
    kept = list(cubes)
    for cube in cubes:
        trial = [c for c in kept if c is not cube]
        trial_cover = Cover(cover.width, trial)
        needed = _on_part_within(on, cube)
        if trial_cover.contains_cover(needed):
            kept = trial
    return Cover(cover.width, kept)


def reduce_cover(cover: Cover, on: Cover) -> Cover:
    """Shrink each cube to the supercube of the ON points only it covers.

    The result is never larger than the input cube, so OFF-set validity is
    preserved; cubes whose unique ON part is empty are dropped.
    """
    current: List[Optional[Cube]] = list(cover.cubes)
    for position in range(len(current)):
        cube = current[position]
        if cube is None:
            continue
        others = Cover(cover.width,
                       [c for i, c in enumerate(current)
                        if i != position and c is not None])
        required = _on_part_within(on, cube).sharp(others)
        # Dropped cubes must leave the working list immediately: later
        # cubes may not credit coverage to them.
        current[position] = required.supercube()
    return Cover(cover.width, [c for c in current if c is not None])


def _cost(cover: Cover) -> Tuple[int, int]:
    return (cover.cube_count(), cover.literal_count())


def espresso_isf(on: Cover, dc: Optional[Cover] = None,
                 max_iterations: int = 10,
                 single_literal_expand: bool = False) -> Cover:
    """Minimise an ISF given by ON and DC covers.

    Returns a cover ``F`` with ``on <= F <= on + dc`` whose cube and
    literal counts have been locally minimised by the espresso loop.

    Parameters
    ----------
    single_literal_expand:
        Restrict each expand step to one literal per cube, modelling the
        Herb limitation discussed in the paper's Section 3.
    """
    if dc is None:
        dc = Cover.empty(on.width)
    off = _off_cover(on, dc)
    expander = expand_single_literal if single_literal_expand else expand
    best = expander(on.scc(), off)
    best = irredundant(best, on)
    best_cost = _cost(best)
    for _ in range(max_iterations):
        trial = reduce_cover(best, on)
        trial = expander(trial, off)
        trial = irredundant(trial, on)
        cost = _cost(trial)
        # Defensive validity gate: the loop's moves preserve the interval
        # by construction, but a regression here would silently corrupt
        # every client, so the invariant is enforced on acceptance.
        if cost < best_cost and covers_interval(trial, on, dc):
            best, best_cost = trial, cost
        else:
            break
    return best


def covers_interval(candidate: Cover, on: Cover, dc: Cover) -> bool:
    """Check ``on <= candidate <= on + dc`` (validity of an ISF solution)."""
    upper = Cover(on.width, list(on.cubes) + list(dc.cubes))
    return (candidate.contains_cover(on)
            and upper.contains_cover(candidate))
