"""Cubes in positional notation.

A cube over ``n`` Boolean variables is stored as a tuple of per-variable
values from :data:`ZERO` (negative literal), :data:`ONE` (positive literal)
and :data:`DASH` (variable absent / don't care).  This is the classical
espresso "positional cube" encoding restricted to the binary case, the
representation used by the two-level machinery and the gyocro/Herb
baselines.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

#: Negative literal.
ZERO = 0
#: Positive literal.
ONE = 1
#: Don't care (variable not in the cube).
DASH = 2

_CHAR = {ZERO: "0", ONE: "1", DASH: "-"}
_VALUE = {"0": ZERO, "1": ONE, "-": DASH, "2": DASH, "x": DASH, "X": DASH}


class Cube:
    """An immutable cube (product term) over a fixed variable count."""

    __slots__ = ("values",)

    def __init__(self, values: Sequence[int]) -> None:
        for value in values:
            if value not in (ZERO, ONE, DASH):
                raise ValueError("cube entries must be 0, 1 or DASH")
        self.values: Tuple[int, ...] = tuple(values)

    # -- constructors ----------------------------------------------------
    @staticmethod
    def from_str(text: str) -> "Cube":
        """Parse ``"1-0"``-style notation (``-``/``2``/``x`` = don't care)."""
        try:
            return Cube([_VALUE[ch] for ch in text.strip()])
        except KeyError as exc:
            raise ValueError("bad cube character: %s" % exc) from exc

    @staticmethod
    def universe(width: int) -> "Cube":
        """The cube with every variable a don't care (the whole space)."""
        return Cube([DASH] * width)

    @staticmethod
    def from_assignment(width: int, assignment: Dict[int, bool]) -> "Cube":
        """Build a cube from a var-index -> polarity mapping."""
        values = [DASH] * width
        for var, polarity in assignment.items():
            values[var] = ONE if polarity else ZERO
        return Cube(values)

    @staticmethod
    def minterm(width: int, value: int) -> "Cube":
        """The minterm whose bit ``i`` of ``value`` is variable ``i``."""
        return Cube([(value >> i) & 1 for i in range(width)])

    # -- dunder ------------------------------------------------------------
    @property
    def width(self) -> int:
        """Number of variable positions."""
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Cube) and self.values == other.values

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> int:
        return self.values[index]

    def __repr__(self) -> str:
        return "Cube(%s)" % str(self)

    def __str__(self) -> str:
        return "".join(_CHAR[value] for value in self.values)

    # -- literal queries -----------------------------------------------
    def literal_count(self) -> int:
        """Number of positions that are not don't care."""
        return sum(1 for value in self.values if value != DASH)

    def literals(self) -> Dict[int, bool]:
        """The cube as a var-index -> polarity mapping."""
        return {index: value == ONE
                for index, value in enumerate(self.values) if value != DASH}

    def is_minterm(self) -> bool:
        """True when every variable is bound."""
        return all(value != DASH for value in self.values)

    def is_universe(self) -> bool:
        """True when no variable is bound (the tautology cube)."""
        return all(value == DASH for value in self.values)

    # -- cube algebra -----------------------------------------------------
    def contains(self, other: "Cube") -> bool:
        """Single-cube containment: does ``self`` cover ``other``?"""
        for mine, theirs in zip(self.values, other.values):
            if mine != DASH and mine != theirs:
                return False
        return True

    def covers_point(self, point: int) -> bool:
        """Does the cube cover the minterm encoded by integer ``point``?"""
        for index, value in enumerate(self.values):
            if value != DASH and value != ((point >> index) & 1):
                return False
        return True

    def intersects(self, other: "Cube") -> bool:
        """True when the two cubes share at least one minterm."""
        for mine, theirs in zip(self.values, other.values):
            if mine != DASH and theirs != DASH and mine != theirs:
                return False
        return True

    def intersection(self, other: "Cube") -> Optional["Cube"]:
        """The meet of two cubes, or None when they are disjoint."""
        result = []
        for mine, theirs in zip(self.values, other.values):
            if mine == DASH:
                result.append(theirs)
            elif theirs == DASH or theirs == mine:
                result.append(mine)
            else:
                return None
        return Cube(result)

    def supercube(self, other: "Cube") -> "Cube":
        """The smallest cube containing both operands."""
        result = []
        for mine, theirs in zip(self.values, other.values):
            result.append(mine if mine == theirs else DASH)
        return Cube(result)

    def distance(self, other: "Cube") -> int:
        """Number of positions where the cubes conflict (0 = intersecting)."""
        return sum(1 for mine, theirs in zip(self.values, other.values)
                   if mine != DASH and theirs != DASH and mine != theirs)

    def cofactor(self, other: "Cube") -> Optional["Cube"]:
        """The espresso cofactor of ``self`` with respect to ``other``.

        Returns None when the cubes do not intersect.  Positions bound by
        ``other`` become don't cares in the result.
        """
        if not self.intersects(other):
            return None
        result = []
        for mine, theirs in zip(self.values, other.values):
            result.append(DASH if theirs != DASH else mine)
        return Cube(result)

    def raise_var(self, index: int) -> "Cube":
        """Return the cube with variable ``index`` freed to don't care."""
        values = list(self.values)
        values[index] = DASH
        return Cube(values)

    def set_var(self, index: int, value: int) -> "Cube":
        """Return the cube with variable ``index`` bound to ``value``."""
        values = list(self.values)
        values[index] = value
        return Cube(values)

    # -- enumeration ------------------------------------------------------
    def size(self) -> int:
        """Number of minterms covered."""
        return 1 << sum(1 for value in self.values if value == DASH)

    def minterms(self) -> Iterator[int]:
        """Yield the integer encodings of all covered minterms."""
        free = [index for index, value in enumerate(self.values)
                if value == DASH]
        base = 0
        for index, value in enumerate(self.values):
            if value == ONE:
                base |= 1 << index
        for mask in range(1 << len(free)):
            point = base
            for bit, index in enumerate(free):
                if (mask >> bit) & 1:
                    point |= 1 << index
            yield point
