"""Solve-as-a-service: the transport-independent service core.

A :class:`SolveService` wraps one :class:`~repro.api.Session` behind the
operations every transport (the stdlib HTTP server in
:mod:`repro.service.http`, the ASGI app in :mod:`repro.service.asgi`, a
test driving it directly) exposes:

``solve``          one request through the tiered cache;
``solve_stream``   the anytime event/improvement stream of one solve;
``batch``          many requests through :meth:`Session.solve_many`;
``resynth``        one network resynthesis run (:mod:`repro.resynth`)
                   through the same tiers, keyed by the
                   network+options fingerprint;
``healthz``        liveness;
``stats``          engine, memo, report-cache, disk-tier and per-tier
                   request counters, plus a ring of recent requests
                   with their per-request memo deltas.

Tiered serving
--------------
Every ``solve`` walks the tiers in order:

1. **RAM** — the session's own report cache
   (:meth:`Session.peek_cached`); a hit costs a dict copy.
2. **Disk** — the shared :class:`~repro.service.DiskCache`, keyed by
   the canonical request fingerprint (:meth:`request_fingerprint`); a
   hit is promoted into the RAM tier (:meth:`Session.store_report`) so
   the next identical request never reaches the disk.
3. **Engine** — a real solve; the fresh report is written back to the
   disk tier for every other worker (and every future worker) to find.

Multi-worker story: each worker process builds its own service over the
same cache directory.  At boot the session memo store is seeded from
the disk tier, so a cold worker starts with the fleet's accumulated
subproblem templates; after every ``flush_every`` engine solves (and at
shutdown) the worker merges its newly learned templates back.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Generator, Iterator, List, Optional, Tuple

from ..api.events import event_to_jsonable
from ..api.request import (SolveRequest, merge_manifest_jobs,
                           relation_spec_to_jsonable)
from ..api.report import SolveReport
from ..api.session import DEFAULT_MEMO_EXPORT_LIMIT, Session
from ..core.explore import CancelToken
from ..resynth.report import ResynthReport
from ..resynth.request import ResynthRequest
from .diskcache import DiskCache, fingerprint_payload

__all__ = ["ServiceError", "SolveService", "DEFAULT_FLUSH_EVERY"]

#: Engine solves between automatic memo flushes to the disk tier.
DEFAULT_FLUSH_EVERY = 8

#: Recent requests kept for the ``/stats`` attribution ring.
RECENT_REQUESTS = 50


class ServiceError(Exception):
    """A client-attributable failure (maps to an HTTP 4xx)."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


#: Exceptions that mean "your request was bad", not "the service broke".
_CLIENT_ERRORS = (ValueError, KeyError, TypeError, OSError)


class SolveService:
    """The service core: one session, a tiered cache, typed operations.

    ``session`` defaults to a fresh :class:`Session`; pass a prepared
    one to pre-register named relations (the service then resolves
    ``{"kind": "name", ...}`` specs against it — deployments must load
    the same corpus into every worker for name-keyed disk entries to
    mean the same thing fleet-wide).  ``disk`` is optional: without it
    the service is RAM-tier only.  All session-touching operations are
    serialised by an internal lock (the BDD engine is single-threaded
    by design); run one service per worker process and scale out with
    more workers over the shared disk tier.
    """

    def __init__(self, session: Optional[Session] = None,
                 disk: Optional[DiskCache] = None, *,
                 flush_every: int = DEFAULT_FLUSH_EVERY,
                 memo_export_limit: int = DEFAULT_MEMO_EXPORT_LIMIT,
                 max_time_limit: Optional[float] = None
                 ) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be a positive int")
        if max_time_limit is not None and not (
                isinstance(max_time_limit, (int, float))
                and math.isfinite(max_time_limit)
                and max_time_limit > 0):
            raise ValueError("max_time_limit must be a positive finite "
                             "number of seconds, or None for no cap")
        self.session = session if session is not None else Session()
        self.disk = disk
        self.flush_every = flush_every
        #: Server-side cap on per-request ``time_limit_seconds``: every
        #: admitted request is clamped to this budget (including
        #: requests asking for *no* limit), so one client cannot hold
        #: the single-threaded engine indefinitely.  ``None`` = no cap.
        self.max_time_limit = max_time_limit
        self.memo_export_limit = memo_export_limit
        self.started = time.time()
        self._lock = threading.RLock()
        self._solves_since_flush = 0
        self.tier_hits = {"ram": 0, "disk": 0, "engine": 0}
        self.request_counts = {"solve": 0, "stream": 0, "batch": 0,
                               "resynth": 0, "errors": 0,
                               "stream_cancelled": 0}
        #: RAM tier for resynthesis reports (the session report cache
        #: only understands SolveRequests), keyed by the same
        #: fingerprint the disk tier uses.
        self._resynth_cache: Dict[str, ResynthReport] = {}
        self.seeded_entries = 0
        self.flushes = 0
        self._recent: Deque[Dict[str, Any]] = deque(maxlen=RECENT_REQUESTS)
        #: Portfolio attribution across served requests: races run and
        #: wins per racer name (cache-served races count — the report
        #: still names its winner).
        self.portfolio_races = 0
        self.portfolio_wins: Dict[str, int] = {}
        #: Subproblem-routing attribution across served requests
        #: (cache-served reports count — their stats still describe
        #: the solve that produced them).
        self.routing_totals = {"solves_with_routing": 0,
                               "subproblems_routed": 0,
                               "route_conversions": 0,
                               "route_hits": 0}
        if self.disk is not None:
            entries = self.disk.load_memo_entries()
            if entries:
                self.session.memo.seed(entries)
            self.seeded_entries = len(entries)

    # ------------------------------------------------------------------
    # Canonical request identity (the disk tier's key)
    # ------------------------------------------------------------------
    def request_fingerprint(self, request: SolveRequest) -> str:
        """The cross-process-stable cache key of one request.

        Combines the canonical relation rendering (``file`` specs are
        inlined so on-disk edits invalidate, exactly like the RAM
        tier) with :meth:`Session.options_key` — every result-shaping
        option, tri-states resolved to their effective decision.  The
        label is deliberately absent: it names the job, not the
        problem.
        """
        spec = request.relation
        if spec is None:
            raise ServiceError("request has no relation source")
        if spec["kind"] == "file":
            with open(spec["path"], "r", encoding="ascii") as handle:
                spec = {"kind": "pla", "text": handle.read()}
        payload = {
            "relation": relation_spec_to_jsonable(dict(spec)),
            "options": list(self.session.options_key(request)),
        }
        return fingerprint_payload(payload)

    # ------------------------------------------------------------------
    # Request parsing
    # ------------------------------------------------------------------
    @staticmethod
    def parse_request(data: Any) -> SolveRequest:
        """Validate one request dict, mapping failures to 400s."""
        if not isinstance(data, dict):
            raise ServiceError("request body must be a JSON object")
        try:
            return SolveRequest.from_dict(data)
        except _CLIENT_ERRORS as exc:
            raise ServiceError("invalid solve request: %s" % exc) from exc

    def _admit(self, request: SolveRequest) -> SolveRequest:
        """Apply server-side admission policy to a parsed request.

        Non-finite time limits (NaN/inf pass the request dataclass's
        range check) are client errors; with :attr:`max_time_limit`
        configured, requests asking for more than the cap — or for no
        limit at all — come back clamped to it.  Clamping happens
        *before* any cache key is computed, so a clamped request is
        cached (RAM, disk, fingerprint) as what actually ran.
        """
        limit = request.time_limit_seconds
        if limit is not None and not math.isfinite(limit):
            raise ServiceError(
                "time_limit_seconds must be finite, got %r" % limit)
        cap = self.max_time_limit
        if cap is not None and (limit is None or limit > cap):
            request = request.replace(time_limit_seconds=cap)
        return request

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        from .. import __version__
        return {"ok": True, "version": __version__,
                "uptime_seconds": time.time() - self.started}

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot across every layer the service owns."""
        with self._lock:
            session = self.session
            return {
                "uptime_seconds": time.time() - self.started,
                "max_time_limit": self.max_time_limit,
                "requests": dict(self.request_counts),
                "tiers": dict(self.tier_hits),
                "session": {
                    "report_cache_entries": len(session._cache),
                    "resynth_cache_entries": len(self._resynth_cache),
                    "cache_hits": session.cache_hits,
                    "relations": session.relation_names(),
                },
                "memo": session.memo_stats(),
                "memo_seeded_entries": self.seeded_entries,
                "memo_flushes": self.flushes,
                "engine": session.engine_stats(),
                "disk": self.disk.stats() if self.disk is not None
                else None,
                "portfolio": {
                    "races": self.portfolio_races,
                    "wins": dict(self.portfolio_wins),
                },
                "routing": dict(self.routing_totals),
                "recent": list(self._recent),
            }

    def solve(self, data: Any) -> Tuple[Dict[str, Any], str]:
        """Serve one request through the tiers.

        Returns ``(report_dict, tier)`` where ``tier`` is ``"ram"``,
        ``"disk"`` or ``"engine"``.  Raises :class:`ServiceError` for
        client-attributable failures (bad request, unknown relation,
        incompatible relation file); anything else propagates as a
        genuine server error.
        """
        with self._lock:
            self.request_counts["solve"] += 1
            try:
                request = self._admit(self.parse_request(data))
                report, tier = self._solve_tiered(request)
            except ServiceError:
                self.request_counts["errors"] += 1
                raise
            except _CLIENT_ERRORS as exc:
                self.request_counts["errors"] += 1
                raise ServiceError("solve failed: %s" % exc) from exc
            self.tier_hits[tier] += 1
            self._record(request, report, tier)
            return report.to_dict(), tier

    def _solve_tiered(self, request: SolveRequest
                      ) -> Tuple[SolveReport, str]:
        session = self.session
        cached = session.peek_cached(request)
        if cached is not None:
            return cached, "ram"
        key = self.request_fingerprint(request)
        if self.disk is not None:
            stored = self.disk.get_report(key)
            if stored is not None:
                report = self._report_from_wire(stored, request)
                if report is not None:
                    session.store_report(request, report)
                    return report, "disk"
        report = session.solve(request)
        if (self.disk is not None and report.ok
                and report.stopped != "cancelled"):
            self.disk.put_report(key, report.to_dict())
        self._after_engine_solve()
        return report, "engine"

    # ------------------------------------------------------------------
    # Resynthesis (repro.resynth through the same tiers)
    # ------------------------------------------------------------------
    def resynth_fingerprint(self, request: ResynthRequest) -> str:
        """Cross-process cache key: circuit content + options.

        ``file`` circuit specs are inlined (like relation files) so an
        on-disk edit invalidates the entry; bundled ``bench`` circuits
        are deterministic builds, so the name suffices.
        """
        spec = request.circuit
        if spec is None:
            raise ServiceError("request has no circuit source")
        if spec["kind"] == "file":
            with open(spec["path"], "r", encoding="ascii") as handle:
                spec = {"kind": "blif", "text": handle.read()}
        payload = {
            "resynth": dict(spec),
            "options": list(request.options_key()),
        }
        return fingerprint_payload(payload)

    @staticmethod
    def parse_resynth_request(data: Any) -> ResynthRequest:
        """Validate a wire payload into a :class:`ResynthRequest`."""
        if not isinstance(data, dict):
            raise ServiceError("request body must be a JSON object")
        try:
            return ResynthRequest.from_dict(data)
        except (ValueError, TypeError) as exc:
            raise ServiceError("invalid request: %s" % exc) from exc

    def resynth(self, data: Any) -> Tuple[Dict[str, Any], str]:
        """Serve one resynthesis run through the tiers.

        Returns ``(report_dict, tier)``.  Pipeline failures (unknown
        circuits, unreadable files) are client-attributable and raise
        :class:`ServiceError`; failed runs are never cached.
        """
        from ..resynth.pipeline import resynthesize

        with self._lock:
            self.request_counts["resynth"] += 1
            try:
                request = self.parse_resynth_request(data)
                key = self.resynth_fingerprint(request)
            except ServiceError:
                self.request_counts["errors"] += 1
                raise
            except _CLIENT_ERRORS as exc:
                self.request_counts["errors"] += 1
                raise ServiceError("resynth failed: %s" % exc) from exc
            cached = self._resynth_cache.get(key)
            if cached is not None:
                tier = "ram"
                report = cached.copy(cached=True, label=request.label)
            else:
                report = None
                if self.disk is not None:
                    stored = self.disk.get_report(key)
                    if stored is not None:
                        report = self._resynth_from_wire(stored)
                if report is not None:
                    tier = "disk"
                    self._resynth_cache[key] = report.copy()
                    report = report.copy(cached=True,
                                         label=request.label)
                else:
                    tier = "engine"
                    report = resynthesize(request, session=self.session)
                    if not report.ok:
                        self.request_counts["errors"] += 1
                        raise ServiceError("resynth failed: %s"
                                           % report.error)
                    self._resynth_cache[key] = report.copy()
                    if self.disk is not None:
                        self.disk.put_report(key, report.to_dict())
                    self._after_engine_solve()
            self.tier_hits[tier] += 1
            return report.to_dict(), tier

    @staticmethod
    def _resynth_from_wire(stored: Dict[str, Any]
                           ) -> Optional[ResynthReport]:
        """Rebuild a disk-tier resynth report; skew degrades to a miss."""
        try:
            report = ResynthReport.from_dict(stored)
        except (ValueError, TypeError):
            return None
        return report if report.ok else None

    def _report_from_wire(self, stored: Dict[str, Any],
                          request: SolveRequest
                          ) -> Optional[SolveReport]:
        """Rebuild a disk-tier report; version skew degrades to a miss."""
        try:
            report = SolveReport.from_dict(stored)
        except (ValueError, TypeError):
            return None
        return Session._cached_copy(report, label=request.label,
                                    request=request.to_dict())

    def solve_stream(self, data: Any
                     ) -> Generator[Tuple[str, Dict[str, Any]], None, None]:
        """The anytime stream of one solve, as ``(event, payload)`` pairs.

        Yields, in order: every :class:`~repro.core.SolveEvent` as
        ``("event", ...)`` (serialised by the shared
        :func:`~repro.api.events.event_to_jsonable`), each strictly
        improving incumbent as ``("improvement", ...)`` (cost, wall
        clock, explored count and the SOP rendering), and finally one
        ``("report", ...)`` with the full report dict.

        Closing the generator mid-stream — what the HTTP layer does
        when the client disconnects — trips the solve's
        :class:`~repro.core.CancelToken`, so the search stops
        cooperatively at the next node boundary instead of running
        headless to completion.  Cancelled partial results are never
        cached (the session guarantees that).
        """
        request = self._admit(self.parse_request(data))
        cancel = CancelToken()
        buffered: List[Dict[str, Any]] = []

        def observer(event: Any) -> None:
            buffered.append(event_to_jsonable(event))

        with self._lock:
            self.request_counts["stream"] += 1
            try:
                gen = self.session.solve_iter(request, cancel=cancel,
                                              observer=observer)
            except _CLIENT_ERRORS as exc:
                self.request_counts["errors"] += 1
                raise ServiceError("invalid solve request: %s"
                                   % exc) from exc
            report: Optional[SolveReport] = None
            try:
                while True:
                    try:
                        improvement = next(gen)
                    except StopIteration as stop:
                        report = stop.value
                        break
                    # Events observed while computing this improvement
                    # happened first; flush them before it.
                    for event in buffered:
                        yield "event", event
                    del buffered[:]
                    yield "improvement", {
                        "cost": improvement.cost,
                        "elapsed_seconds": improvement.elapsed_seconds,
                        "explored": improvement.explored,
                        "sop": improvement.solution.describe(),
                    }
            except GeneratorExit:
                # Client went away: stop the search cooperatively and
                # let the solver wind down (it returns best-so-far
                # almost immediately; the session will not cache it).
                cancel.cancel()
                for _ in gen:
                    pass
                self.request_counts["stream_cancelled"] += 1
                raise
            for event in buffered:
                yield "event", event
            del buffered[:]
            if report is not None:
                if (self.disk is not None and report.ok
                        and report.stopped != "cancelled"
                        and not report.cached):
                    self.disk.put_report(self.request_fingerprint(request),
                                         report.to_dict())
                if not report.cached:
                    self._after_engine_solve()
                tier = "ram" if report.cached else "engine"
                self.tier_hits[tier] += 1
                self._record(request, report, tier)
                yield "report", report.to_dict()

    def batch(self, data: Any) -> Dict[str, Any]:
        """Drive :meth:`Session.solve_many` over a manifest payload.

        The body is manifest-shaped (a list of request dicts, or
        ``{"defaults", "jobs"}``) with two optional extras on the
        object form: ``executor`` (``serial``/``thread``/``process``,
        default serial — the service already parallelises across
        worker processes) and ``workers``.  RAM- and disk-tier hits
        are peeled off before dispatch, identical misses dispatch once
        and share the answer, and only genuine misses reach the pool.
        Fresh reports are written back to the disk tier.
        """
        executor = "serial"
        workers: Optional[int] = None
        if isinstance(data, dict):
            data = dict(data)
            executor = data.pop("executor", "serial")
            workers = data.pop("workers", None)
            if executor not in ("serial", "thread", "process"):
                raise ServiceError("executor must be 'serial', "
                                   "'thread' or 'process'")
            if workers is not None and (not isinstance(workers, int)
                                        or workers < 1):
                raise ServiceError("workers must be a positive int")
        try:
            jobs = merge_manifest_jobs(data)
            requests = [self._admit(self.parse_request(job))
                        for job in jobs]
        except _CLIENT_ERRORS as exc:
            raise ServiceError("invalid batch manifest: %s" % exc) from exc
        with self._lock:
            self.request_counts["batch"] += 1
            reports: List[Optional[SolveReport]] = [None] * len(requests)
            tiers: List[str] = ["engine"] * len(requests)
            pending: List[Tuple[int, SolveRequest]] = []
            for index, request in enumerate(requests):
                try:
                    report, tier = self._peek_tiers(request)
                except _CLIENT_ERRORS:
                    # Bad per-job input: let solve_many capture it as a
                    # failed report, honouring its no-raise contract.
                    report, tier = None, "engine"
                if report is not None:
                    reports[index] = report
                    tiers[index] = tier
                    self.tier_hits[tier] += 1
                else:
                    pending.append((index, request))
            # Within-batch dedup: identical problems dispatch once and
            # share the answer (solve_many only content-dedups for pool
            # executors; the serial path keys on object identity, which
            # two wire requests never share).
            dispatch: List[Tuple[int, SolveRequest]] = []
            duplicates: List[Tuple[int, SolveRequest, int]] = []
            first_for: Dict[str, int] = {}
            for index, request in pending:
                try:
                    fingerprint = self.request_fingerprint(request)
                except (ServiceError, OSError):
                    dispatch.append((index, request))
                    continue
                if fingerprint in first_for:
                    duplicates.append((index, request,
                                       first_for[fingerprint]))
                else:
                    first_for[fingerprint] = index
                    dispatch.append((index, request))
            if dispatch:
                fresh = self.session.solve_many(
                    [request for _, request in dispatch],
                    max_workers=workers, executor=executor)
                for (index, request), report in zip(dispatch, fresh):
                    if request.label is None:
                        # solve_many numbers unlabelled jobs by its own
                        # sub-batch position; renumber to the caller's.
                        report = report.copy(label="job-%d" % index)
                    reports[index] = report
                    tier = "ram" if report.cached else "engine"
                    tiers[index] = tier
                    self.tier_hits[tier] += 1
                    if (self.disk is not None and report.ok
                            and not report.cached
                            and report.stopped != "cancelled"):
                        try:
                            key = self.request_fingerprint(request)
                        except (ServiceError, OSError):
                            continue
                        self.disk.put_report(key, report.to_dict())
                if any(not report.cached for report in fresh):
                    self._after_engine_solve()
            for index, request, source_index in duplicates:
                source = reports[source_index]
                if source is None:
                    continue
                label = request.label or "job-%d" % index
                if source.ok:
                    # Shared through the batch, so it is cache-served
                    # from this job's point of view.
                    reports[index] = Session._cached_copy(
                        source, label=label, request=request.to_dict())
                    tiers[index] = "ram"
                else:
                    reports[index] = source.copy(
                        label=label, request=request.to_dict())
                self.tier_hits[tiers[index]] += 1
            for request, report, tier in zip(requests, reports, tiers):
                if report is not None:
                    self._record(request, report, tier)
        return {
            "reports": [report.to_dict() for report in reports
                        if report is not None],
            "tiers": tiers,
            "ok": all(report.ok for report in reports
                      if report is not None),
        }

    def _peek_tiers(self, request: SolveRequest
                    ) -> Tuple[Optional[SolveReport], str]:
        """RAM then disk, never the engine; ``(None, _)`` = dispatch."""
        cached = self.session.peek_cached(request)
        if cached is not None:
            return cached, "ram"
        if self.disk is not None:
            key = self.request_fingerprint(request)
            stored = self.disk.get_report(key)
            if stored is not None:
                report = self._report_from_wire(stored, request)
                if report is not None:
                    self.session.store_report(request, report)
                    return report, "disk"
        return None, "engine"

    # ------------------------------------------------------------------
    # Memo flushing
    # ------------------------------------------------------------------
    def _after_engine_solve(self) -> None:
        self._solves_since_flush += 1
        if (self.disk is not None
                and self._solves_since_flush >= self.flush_every):
            self.flush()

    def flush(self) -> int:
        """Merge this worker's memo templates into the disk tier now.

        Returns the number of entries the disk tier holds afterwards
        (0 when there is no disk tier).  Called automatically every
        ``flush_every`` engine solves and by transports at shutdown.
        """
        self._solves_since_flush = 0
        if self.disk is None:
            return 0
        entries = self.session.memo.export_entries(
            limit=self.memo_export_limit)
        self.flushes += 1
        return self.disk.merge_memo_entries(entries)

    # ------------------------------------------------------------------
    def _record(self, request: SolveRequest, report: SolveReport,
                tier: str) -> None:
        """Append one row to the per-request attribution ring."""
        row = {
            "label": request.label,
            "tier": tier,
            "ok": report.ok,
            "cached": report.cached,
            "cost": report.cost,
            "memo_hits": int(report.stats.get("memo_hits", 0)),
            "memo_misses": int(report.stats.get("memo_misses", 0)),
            "subproblems_routed": int(
                report.stats.get("subproblems_routed", 0)),
            "runtime_seconds": report.stats.get("runtime_seconds", 0.0),
        }
        if row["subproblems_routed"]:
            totals = self.routing_totals
            totals["solves_with_routing"] += 1
            totals["subproblems_routed"] += row["subproblems_routed"]
            totals["route_conversions"] += int(
                report.stats.get("route_conversions", 0))
            totals["route_hits"] += int(
                report.stats.get("route_hits", 0))
        if report.portfolio is not None:
            winner = report.portfolio.get("winner")
            row["portfolio_winner"] = winner
            row["portfolio_executor"] = report.portfolio.get("executor")
            self.portfolio_races += 1
            if winner is not None:
                self.portfolio_wins[winner] = \
                    self.portfolio_wins.get(winner, 0) + 1
        self._recent.append(row)

    def iter_recent(self) -> Iterator[Dict[str, Any]]:
        return iter(list(self._recent))
