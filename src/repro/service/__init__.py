"""Solve-as-a-service: HTTP/SSE transport with a tiered solve cache.

The package splits cleanly into four pieces:

:mod:`~repro.service.app`
    :class:`SolveService` — the transport-independent core: tiered
    ``solve`` (RAM → disk → engine), the anytime ``solve_stream``,
    ``batch``, ``healthz``/``stats``, and periodic memo flushing.
:mod:`~repro.service.diskcache`
    :class:`DiskCache` — the process-spanning tier: atomic JSON report
    files keyed by canonical request fingerprints, plus the shared
    ``memo.json`` template pool workers seed from at boot.
:mod:`~repro.service.http`
    The stdlib ``ThreadingHTTPServer`` transport (no dependencies) —
    ``create_server``/``serve`` and the SSE encoder.
:mod:`~repro.service.asgi`
    The same wire protocol as a raw ASGI 3.0 app for uvicorn-style
    servers, still dependency-free.
:mod:`~repro.service.prewarm`
    Corpus replay that fills a cache directory before traffic arrives.

Sixty-second tour::

    from repro.service import DiskCache, SolveService, create_server

    service = SolveService(disk=DiskCache("cache"))
    server = create_server(service, "127.0.0.1", 0)
    port = server.server_address[1]
    # POST {"relation": {"kind": "pla", "text": ...}} to /solve;
    # the second identical POST returns X-Cache-Tier: ram.
"""

from .app import DEFAULT_FLUSH_EVERY, ServiceError, SolveService
from .asgi import create_app
from .diskcache import DEFAULT_DISK_MEMO_LIMIT, DiskCache, fingerprint_payload
from .http import create_server, encode_sse, serve
from .prewarm import prewarm

__all__ = [
    "DEFAULT_DISK_MEMO_LIMIT",
    "DEFAULT_FLUSH_EVERY",
    "DiskCache",
    "ServiceError",
    "SolveService",
    "create_app",
    "create_server",
    "encode_sse",
    "fingerprint_payload",
    "prewarm",
    "serve",
]
