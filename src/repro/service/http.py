"""The stdlib HTTP/SSE transport over a :class:`SolveService`.

No third-party dependency: :class:`http.server.ThreadingHTTPServer`
carries the whole wire protocol.  Routes:

=======  ==================  ===========================================
Method   Path                Body / response
=======  ==================  ===========================================
POST     ``/solve``          SolveRequest JSON → SolveReport JSON; the
                             ``X-Cache-Tier`` header says which tier
                             answered (``ram``/``disk``/``engine``).
POST     ``/solve/stream``   SolveRequest JSON → ``text/event-stream``
                             of ``event:``/``improvement:`` frames and
                             one final ``report:`` frame.  Client
                             disconnect cancels the solve.
POST     ``/resynth``        ResynthRequest JSON → ResynthReport JSON
                             through the same tiers (``X-Cache-Tier``).
POST     ``/batch``          Manifest JSON (list, or ``{"defaults",
                             "jobs"}`` plus optional ``executor``,
                             ``workers``) → ``{"reports", "tiers",
                             "ok"}``.
GET      ``/healthz``        Liveness probe.
GET      ``/stats``          Tier/engine/memo/disk counter snapshot.
=======  ==================  ===========================================

Errors are JSON too: ``{"error": ...}`` with 400 for bad requests
(malformed JSON, unknown relations, invalid options), 404 for unknown
routes, 500 for genuine failures.

Run it from the CLI (``repro serve --port 8080 --cache-dir CACHE``) or
embed it::

    from repro.service import SolveService, create_server

    server = create_server(SolveService(), "127.0.0.1", 0)
    print("listening on port", server.server_address[1])
    server.serve_forever()
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from .app import ServiceError, SolveService

__all__ = ["ServiceHandler", "create_server", "serve"]

#: Socket errors that mean "the client hung up" — on an SSE stream they
#: trigger cooperative cancellation rather than a traceback.
_DISCONNECTS = (BrokenPipeError, ConnectionResetError)

_MAX_BODY = 32 * 1024 * 1024


class ServiceHandler(BaseHTTPRequestHandler):
    """Request handler bound to the server's :class:`SolveService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-solve"
    #: Silenced by default; ``create_server(..., quiet=False)`` restores
    #: the stdlib's per-request stderr lines.
    quiet = True

    # -- plumbing ------------------------------------------------------
    @property
    def service(self) -> SolveService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if not self.quiet:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(self, status: int, payload: Any,
                   extra_headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        try:
            self._send_json(status, {"error": message})
        except _DISCONNECTS:
            pass

    def _read_body_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServiceError("request body required")
        if length > _MAX_BODY:
            raise ServiceError("request body too large", status=413)
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError("request body is not valid JSON: %s"
                               % exc) from exc

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._send_json(200, self.service.healthz())
        elif path == "/stats":
            self._send_json(200, self.service.stats())
        else:
            self._send_error_json(404, "no such route: %s" % path)

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        path = self.path.split("?", 1)[0]
        try:
            if path == "/solve":
                data = self._read_body_json()
                report, tier = self.service.solve(data)
                self._send_json(200, report, {"X-Cache-Tier": tier})
            elif path == "/solve/stream":
                data = self._read_body_json()
                self._stream_solve(data)
            elif path == "/batch":
                data = self._read_body_json()
                self._send_json(200, self.service.batch(data))
            elif path == "/resynth":
                data = self._read_body_json()
                report, tier = self.service.resynth(data)
                self._send_json(200, report, {"X-Cache-Tier": tier})
            else:
                self._send_error_json(404, "no such route: %s" % path)
        except ServiceError as exc:
            self._send_error_json(exc.status, str(exc))
        except _DISCONNECTS:
            self.close_connection = True
        except Exception as exc:  # noqa: BLE001 — the wire boundary
            self._send_error_json(500, "internal error: %s" % exc)

    # -- SSE -----------------------------------------------------------
    def _stream_solve(self, data: Any) -> None:
        """Relay the service's anytime stream as Server-Sent Events."""
        stream = self.service.solve_stream(data)
        started = False
        try:
            for name, payload in stream:
                if not started:
                    # Headers go out lazily so a validation error can
                    # still become a clean 400 instead of a dead SSE.
                    self.send_response(200)
                    self.send_header("Content-Type", "text/event-stream")
                    self.send_header("Cache-Control", "no-cache")
                    self.send_header("Connection", "close")
                    self.end_headers()
                    self.close_connection = True
                    started = True
                self.wfile.write(encode_sse(name, payload))
                self.wfile.flush()
        except _DISCONNECTS:
            # Closing the generator trips the solve's CancelToken.
            stream.close()
            self.close_connection = True
        except ServiceError:
            if started:
                self.close_connection = True
                return
            raise
        finally:
            stream.close()


def encode_sse(name: str, payload: Any) -> bytes:
    """One Server-Sent-Events frame: ``event:`` + single-line ``data:``."""
    return ("event: %s\ndata: %s\n\n"
            % (name, json.dumps(payload))).encode("utf-8")


class _ServiceServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], handler: type,
                 service: SolveService) -> None:
        self.service = service
        ThreadingHTTPServer.__init__(self, address, handler)


def create_server(service: SolveService, host: str = "127.0.0.1",
                  port: int = 8080, *, quiet: bool = True
                  ) -> ThreadingHTTPServer:
    """A ready-to-run threaded HTTP server (``port=0`` picks a free one)."""
    handler = type("BoundServiceHandler", (ServiceHandler,),
                   {"quiet": quiet})
    return _ServiceServer((host, port), handler, service)


def serve(service: SolveService, host: str = "127.0.0.1",
          port: int = 8080, *, quiet: bool = True) -> None:
    """Blocking serve loop; flushes memo templates to disk on exit."""
    server = create_server(service, host, port, quiet=quiet)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.flush()
