"""The disk tier: process-spanning persistence of reports and memo state.

A :class:`DiskCache` is a plain directory shared by every worker of a
deployment (and by consecutive process lifetimes), holding the two
things worth keeping when a worker dies:

* **solved reports** — one JSON file per canonical request fingerprint
  under ``reports/``, written atomically, read back as
  :meth:`SolveReport.from_dict` payloads.  Serving a report from here
  costs one small file read; the engine is never touched.
* **memo templates** — the session :class:`~repro.core.memo.MemoStore`
  exported through the JSON wire format
  (:func:`repro.core.memo.entries_to_jsonable`) into ``memo.json``.
  Fresh workers seed their store from it at boot and merge what they
  learned back periodically, so the whole fleet shares one growing
  body of solved subproblems.

Everything is stdlib, everything is crash-tolerant: writes go through a
temp file + :func:`os.replace` (atomic on POSIX and Windows), and any
unreadable or truncated file — a concurrent writer, a version skew, a
stray edit — degrades to a cache miss, never an exception.  Concurrent
memo merges are last-write-wins over a read-merge-write cycle; a lost
race forfeits at most one flush interval of templates, which the next
flush re-learns.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

from ..core.memo import entries_from_jsonable, entries_to_jsonable

__all__ = ["DiskCache", "fingerprint_payload"]

#: Default bound on how many memo entries ``memo.json`` retains (the
#: most recently merged win).  Matches the in-RAM store's default.
DEFAULT_DISK_MEMO_LIMIT = 4096


def fingerprint_payload(payload: Any) -> str:
    """A stable hex digest of a JSON-able payload (the slot name).

    Canonical JSON (sorted keys, no whitespace variance) hashed with
    SHA-256: equal payloads fingerprint equally in every process on
    every platform, which is the whole point of a disk tier shared by
    a worker fleet.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class DiskCache:
    """A directory-backed report + memo store shared across processes.

    The reports directory can be bounded two ways (both optional, both
    enforced on every write so the directory never grows past the
    moment a worker stops writing):

    * ``max_report_bytes`` — total payload bytes; least-recently-*used*
      reports go first (a served hit refreshes its file's mtime, so
      hot entries survive).
    * ``max_report_age_seconds`` — reports whose mtime is older are
      dropped regardless of the byte budget.
    """

    def __init__(self, root: str, *,
                 memo_limit: Optional[int] = DEFAULT_DISK_MEMO_LIMIT,
                 max_report_bytes: Optional[int] = None,
                 max_report_age_seconds: Optional[float] = None
                 ) -> None:
        if max_report_bytes is not None and max_report_bytes < 0:
            raise ValueError("max_report_bytes must be >= 0 or None")
        if (max_report_age_seconds is not None
                and max_report_age_seconds < 0):
            raise ValueError("max_report_age_seconds must be >= 0 or "
                             "None")
        self.root = os.path.abspath(root)
        self.memo_limit = memo_limit
        self.max_report_bytes = max_report_bytes
        self.max_report_age_seconds = max_report_age_seconds
        self._reports_dir = os.path.join(self.root, "reports")
        self._memo_path = os.path.join(self.root, "memo.json")
        os.makedirs(self._reports_dir, exist_ok=True)
        self.report_hits = 0
        self.report_misses = 0
        self.report_stores = 0
        self.report_evictions = 0
        self.memo_loads = 0
        self.memo_merges = 0

    # -- atomic file plumbing ------------------------------------------
    @staticmethod
    def _write_atomic(path: str, payload: Any) -> None:
        """Write JSON so readers only ever see complete documents."""
        directory = os.path.dirname(path)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @staticmethod
    def _read_json(path: str) -> Optional[Any]:
        """Read a JSON file; any failure whatsoever is a miss."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    # -- reports -------------------------------------------------------
    def _report_path(self, key: str) -> str:
        return os.path.join(self._reports_dir, key + ".json")

    def get_report(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored report dict for ``key``, or ``None`` (counted).

        A hit refreshes the file's mtime (best-effort), which is what
        makes the byte-budget eviction least-recently-*used* rather
        than least-recently-written.
        """
        path = self._report_path(key)
        data = self._read_json(path)
        if isinstance(data, dict):
            self.report_hits += 1
            try:
                os.utime(path, None)
            except OSError:
                pass
            return data
        self.report_misses += 1
        return None

    def put_report(self, key: str, report: Dict[str, Any]) -> None:
        """Persist one report dict under its fingerprint (atomic).

        Every write re-enforces the directory bounds, so the tier
        stays within budget without a separate sweeper process.
        """
        self._write_atomic(self._report_path(key), report)
        self.report_stores += 1
        self._evict_reports()

    def _evict_reports(self) -> None:
        """Enforce ``max_report_age_seconds`` / ``max_report_bytes``.

        Age first (expired entries are dead weight whatever the byte
        budget says), then oldest-mtime-first until the remaining
        payload fits.  Races with concurrent workers degrade safely:
        a file deleted under us was evictable for them too.
        """
        if self.max_report_bytes is None \
                and self.max_report_age_seconds is None:
            return
        entries = []  # (mtime, size, path)
        try:
            names = os.listdir(self._reports_dir)
        except OSError:
            return
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self._reports_dir, name)
            try:
                status = os.stat(path)
            except OSError:
                continue
            entries.append((status.st_mtime, status.st_size, path))
        now = time.time()
        if self.max_report_age_seconds is not None:
            cutoff = now - self.max_report_age_seconds
            keep = []
            for entry in entries:
                if entry[0] < cutoff:
                    self._evict_one(entry[2])
                else:
                    keep.append(entry)
            entries = keep
        if self.max_report_bytes is not None:
            total = sum(size for _, size, _ in entries)
            entries.sort()  # oldest mtime first
            for _, size, path in entries:
                if total <= self.max_report_bytes:
                    break
                self._evict_one(path)
                total -= size

    def _evict_one(self, path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            return
        self.report_evictions += 1

    def report_count(self) -> int:
        try:
            return sum(1 for name in os.listdir(self._reports_dir)
                       if name.endswith(".json"))
        except OSError:
            return 0

    def report_bytes(self) -> int:
        """Total payload bytes currently in the reports directory."""
        total = 0
        try:
            names = os.listdir(self._reports_dir)
        except OSError:
            return 0
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                total += os.stat(
                    os.path.join(self._reports_dir, name)).st_size
            except OSError:
                continue
        return total

    # -- memo templates ------------------------------------------------
    def load_memo_entries(self) -> List[Tuple[Any, Any]]:
        """The persisted memo entries, seed-ready (possibly empty)."""
        data = self._read_json(self._memo_path)
        if not isinstance(data, dict):
            return []
        self.memo_loads += 1
        return entries_from_jsonable(data.get("entries", []))

    def merge_memo_entries(self, entries: List[Tuple[Any, Any]]) -> int:
        """Fold new entries into ``memo.json``; returns the stored size.

        Read-merge-write: what is on disk stays (other workers'
        learning), incoming entries overwrite equal keys and append as
        most-recent, and the oldest entries past ``memo_limit`` are
        dropped — the same LRU-flavoured bound the in-RAM store uses.
        """
        merged: Dict[Any, Any] = dict(self.load_memo_entries())
        for key, value in entries:
            merged.pop(key, None)
            merged[key] = value
        items = list(merged.items())
        if self.memo_limit is not None and len(items) > self.memo_limit:
            items = items[-self.memo_limit:]
        self._write_atomic(self._memo_path,
                           {"entries": entries_to_jsonable(items)})
        self.memo_merges += 1
        return len(items)

    def memo_entry_count(self) -> int:
        data = self._read_json(self._memo_path)
        if not isinstance(data, dict):
            return 0
        entries = data.get("entries")
        return len(entries) if isinstance(entries, list) else 0

    # -- maintenance ---------------------------------------------------
    def clear(self) -> None:
        """Drop every persisted report and memo entry (counters kept)."""
        try:
            for name in os.listdir(self._reports_dir):
                if name.endswith(".json"):
                    try:
                        os.unlink(os.path.join(self._reports_dir, name))
                    except OSError:
                        pass
        except OSError:
            pass
        try:
            os.unlink(self._memo_path)
        except OSError:
            pass

    def stats(self) -> Dict[str, Any]:
        """Counter + occupancy snapshot (shape mirrors memo stats)."""
        total = self.report_hits + self.report_misses
        return {
            "root": self.root,
            "reports": self.report_count(),
            "report_hits": self.report_hits,
            "report_misses": self.report_misses,
            "report_stores": self.report_stores,
            "report_hit_rate": (self.report_hits / total) if total
            else 0.0,
            "report_bytes": self.report_bytes(),
            "report_evictions": self.report_evictions,
            "max_report_bytes": self.max_report_bytes,
            "max_report_age_seconds": self.max_report_age_seconds,
            "memo_entries": self.memo_entry_count(),
            "memo_limit": self.memo_limit,
            "memo_loads": self.memo_loads,
            "memo_merges": self.memo_merges,
        }
