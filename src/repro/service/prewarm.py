"""Cache prewarming: replay a request corpus into the disk tier.

Deployments keep a corpus of representative requests (the same manifest
JSON :func:`repro.api.load_manifest` reads — a list of request dicts,
or ``{"defaults": ..., "jobs": [...]}``).  ``repro prewarm`` replays it
through a throwaway :class:`SolveService` over the real cache
directory, so by the time traffic arrives every corpus request is a
disk-tier hit and — at least as important — ``memo.json`` carries the
subproblem templates the corpus taught the engine.  A cold worker
booting against that directory starts with the fleet's accumulated
learning instead of an empty memo store (see
``benchmarks/bench_service.py`` for the measured effect).

Idempotent by construction: rerunning the same corpus is a sweep of
cache hits.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..api.request import load_manifest
from .app import SolveService
from .diskcache import DiskCache

__all__ = ["prewarm"]


def prewarm(corpus_path: str, cache_dir: str, *,
            executor: str = "serial", workers: Optional[int] = None,
            service: Optional[SolveService] = None) -> Dict[str, Any]:
    """Solve every corpus request into ``cache_dir``; return a summary.

    ``executor``/``workers`` pass straight through to the batch
    machinery (:meth:`Session.solve_many`); ``service`` lets tests and
    the CLI inject a prepared instance (named relations, custom flush
    cadence) — it must already own a disk tier on ``cache_dir``.
    """
    requests = load_manifest(corpus_path)
    if service is None:
        service = SolveService(disk=DiskCache(cache_dir))
    payload: Dict[str, Any] = {
        "jobs": [request.to_dict() for request in requests],
        "executor": executor,
    }
    if workers is not None:
        payload["workers"] = workers
    result = service.batch(payload)
    memo_entries = service.flush()
    tier_counts: Dict[str, int] = {}
    for tier in result["tiers"]:
        tier_counts[tier] = tier_counts.get(tier, 0) + 1
    return {
        "corpus": corpus_path,
        "cache_dir": service.disk.root if service.disk else cache_dir,
        "jobs": len(requests),
        "ok": result["ok"],
        "tiers": tier_counts,
        "memo_entries": memo_entries,
        "disk": service.disk.stats() if service.disk else None,
    }
