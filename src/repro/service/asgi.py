"""A dependency-free ASGI app over :class:`SolveService`.

The repository's primary transport is the stdlib server in
:mod:`repro.service.http`; this module speaks the raw ASGI 3.0 protocol
(plain ``async def app(scope, receive, send)``) so deployments that
*do* have an ASGI server handy — uvicorn, hypercorn, daphne — can run
the same service under it without this package importing any of them::

    uvicorn repro.service.asgi:app --port 8080

Configuration of the module-level ``app`` comes from the environment
(it is constructed lazily, on the first request):

``REPRO_CACHE_DIR``    directory for the disk tier (unset = RAM only);
``REPRO_FLUSH_EVERY``  engine solves between memo flushes (default 8).

Routes, bodies and status codes match :mod:`repro.service.http`
exactly; ``/solve/stream`` emits the same SSE frames.  The engine work
itself is synchronous and serialised by the service lock, so it runs in
worker threads (via :func:`asyncio.to_thread`) to keep the event loop
responsive.  One honest caveat against the stdlib transport: ASGI
disconnects are noticed between stream frames, so a client that hangs
up mid-solve cancels the search at the next emitted frame rather than
the next socket write.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from .app import ServiceError, SolveService
from .diskcache import DiskCache
from .http import encode_sse

__all__ = ["create_app", "app"]

Scope = Dict[str, Any]
Receive = Callable[[], Awaitable[Dict[str, Any]]]
Send = Callable[[Dict[str, Any]], Awaitable[None]]


def create_app(service: Optional[SolveService] = None
               ) -> Callable[[Scope, Receive, Send], Awaitable[None]]:
    """Build the ASGI callable around ``service`` (default from env)."""

    state = {"service": service}
    lock = threading.Lock()

    def get_service() -> SolveService:
        with lock:
            if state["service"] is None:
                state["service"] = _service_from_env()
            return state["service"]

    async def asgi(scope: Scope, receive: Receive, send: Send) -> None:
        if scope["type"] == "lifespan":
            await _lifespan(get_service, receive, send)
            return
        if scope["type"] != "http":
            raise RuntimeError("unsupported ASGI scope type %r"
                               % scope["type"])
        await _dispatch(get_service(), scope, receive, send)

    return asgi


def _service_from_env() -> SolveService:
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    disk = DiskCache(cache_dir) if cache_dir else None
    flush_every = int(os.environ.get("REPRO_FLUSH_EVERY", "8"))
    return SolveService(disk=disk, flush_every=flush_every)


async def _lifespan(get_service: Callable[[], SolveService],
                    receive: Receive, send: Send) -> None:
    while True:
        message = await receive()
        if message["type"] == "lifespan.startup":
            get_service()  # eager boot: seed the memo before traffic
            await send({"type": "lifespan.startup.complete"})
        elif message["type"] == "lifespan.shutdown":
            await asyncio.to_thread(get_service().flush)
            await send({"type": "lifespan.shutdown.complete"})
            return


async def _dispatch(service: SolveService, scope: Scope,
                    receive: Receive, send: Send) -> None:
    method = scope["method"]
    path = scope["path"]
    try:
        if method == "GET" and path == "/healthz":
            await _send_json(send, 200, service.healthz())
        elif method == "GET" and path == "/stats":
            await _send_json(send, 200,
                             await asyncio.to_thread(service.stats))
        elif method == "POST" and path == "/solve":
            data = await _read_json(receive)
            report, tier = await asyncio.to_thread(service.solve, data)
            await _send_json(send, 200, report,
                             [(b"x-cache-tier", tier.encode("ascii"))])
        elif method == "POST" and path == "/batch":
            data = await _read_json(receive)
            await _send_json(send, 200,
                             await asyncio.to_thread(service.batch, data))
        elif method == "POST" and path == "/resynth":
            data = await _read_json(receive)
            report, tier = await asyncio.to_thread(service.resynth, data)
            await _send_json(send, 200, report,
                             [(b"x-cache-tier", tier.encode("ascii"))])
        elif method == "POST" and path == "/solve/stream":
            data = await _read_json(receive)
            await _stream(service, data, receive, send)
        else:
            await _send_json(send, 404,
                             {"error": "no such route: %s" % path})
    except ServiceError as exc:
        await _send_json(send, exc.status, {"error": str(exc)})
    except Exception as exc:  # noqa: BLE001 — the wire boundary
        await _send_json(send, 500, {"error": "internal error: %s" % exc})


async def _read_json(receive: Receive) -> Any:
    chunks = []
    while True:
        message = await receive()
        if message["type"] == "http.disconnect":
            raise ServiceError("client disconnected before body arrived")
        chunks.append(message.get("body", b""))
        if not message.get("more_body", False):
            break
    raw = b"".join(chunks)
    if not raw:
        raise ServiceError("request body required")
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ServiceError("request body is not valid JSON: %s"
                           % exc) from exc


async def _send_json(send: Send, status: int, payload: Any,
                     extra_headers: Optional[list] = None) -> None:
    body = json.dumps(payload).encode("utf-8")
    headers = [(b"content-type", b"application/json"),
               (b"content-length", str(len(body)).encode("ascii"))]
    headers.extend(extra_headers or [])
    await send({"type": "http.response.start", "status": status,
                "headers": headers})
    await send({"type": "http.response.body", "body": body})


async def _stream(service: SolveService, data: Any,
                  receive: Receive, send: Send) -> None:
    """SSE over ASGI: one worker thread owns the sync generator.

    The generator (and the service lock it takes) must live on a single
    thread, so the worker iterates it and posts frames to the event
    loop through a queue; the async side forwards frames and watches
    ``receive`` for ``http.disconnect``, which flips a stop flag the
    worker honours between frames (closing the generator there trips
    the solve's CancelToken on the right thread).
    """
    loop = asyncio.get_running_loop()
    queue: "asyncio.Queue[Tuple[str, Any]]" = asyncio.Queue()
    stop = threading.Event()

    def post(kind: str, payload: Any) -> None:
        loop.call_soon_threadsafe(queue.put_nowait, (kind, payload))

    def worker() -> None:
        stream = service.solve_stream(data)
        try:
            for name, payload in stream:
                post("frame", (name, payload))
                if stop.is_set():
                    break
        except Exception as exc:  # noqa: BLE001 — crosses threads
            post("error", exc)
        finally:
            stream.close()
            post("done", None)

    thread = threading.Thread(target=worker, daemon=True,
                              name="repro-sse-worker")
    thread.start()

    async def watch_disconnect() -> None:
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                stop.set()
                return

    watcher = asyncio.ensure_future(watch_disconnect())
    started = False
    try:
        while True:
            kind, payload = await queue.get()
            if kind == "error":
                if isinstance(payload, ServiceError) and not started:
                    await _send_json(send, payload.status,
                                     {"error": str(payload)})
                elif not started:
                    await _send_json(send, 500,
                                     {"error": "internal error: %s"
                                      % payload})
                return
            if kind == "done":
                if started:
                    await send({"type": "http.response.body",
                                "body": b"", "more_body": False})
                return
            name, frame = payload
            if not started:
                await send({"type": "http.response.start", "status": 200,
                            "headers": [(b"content-type",
                                         b"text/event-stream"),
                                        (b"cache-control", b"no-cache")]})
                started = True
            if stop.is_set():
                continue  # drain silently; worker is winding down
            await send({"type": "http.response.body",
                        "body": encode_sse(name, frame),
                        "more_body": True})
    finally:
        stop.set()
        watcher.cancel()
        await asyncio.to_thread(thread.join, 10.0)


#: The uvicorn-ready entry point: ``uvicorn repro.service.asgi:app``.
app = create_app()
