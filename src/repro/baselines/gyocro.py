"""A gyocro-style heuristic BR minimiser (reference [33] of the paper).

gyocro seeds a multiple-output cover with the QuickSolver solution, then
repeats the espresso loop — *reduce*, *expand*, *irredundant* — as long as
the cost (number of product terms, then literals) decreases, checking each
move against the relation instead of against a fixed ON/OFF pair.

Every move here is generate-and-test: a candidate cover is accepted only
if it still denotes a function compatible with the relation (checked
exactly through the BDD characteristic function).  That keeps each local
move sound while reproducing the structural weakness the paper's
Section 9.1 demonstrates: cube-wise local search cannot leave certain
basins (Fig. 10), because the output sets that need changing are not
reachable through any single cube expansion or reduction.

The Herb variant [18] (``single_literal_expand=True``, used by
:mod:`repro.baselines.herb`) may raise at most one literal per cube per
pass, the restriction the paper blames for Herb's longer runtimes and
narrower search.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.quick import quick_solve
from ..core.relation import BooleanRelation
from ..core.solution import Solution
from ..sop.cube import DASH, Cube
from .mvcover import MvCover, MvCube


@dataclass
class GyocroOptions:
    """Tuning of the reduce/expand/irredundant loop."""

    max_iterations: int = 20
    single_literal_expand: bool = False
    expand_outputs: bool = True
    initial: Optional[MvCover] = None


@dataclass
class GyocroStats:
    iterations: int = 0
    expansions: int = 0
    reductions: int = 0
    removals: int = 0
    compatibility_checks: int = 0
    runtime_seconds: float = 0.0


@dataclass
class GyocroResult:
    solution: Solution
    cover: MvCover
    stats: GyocroStats


class _Search:
    """Mutable state of one gyocro run."""

    def __init__(self, relation: BooleanRelation,
                 options: GyocroOptions) -> None:
        self.relation = relation
        self.options = options
        self.stats = GyocroStats()

    def compatible(self, cover: MvCover) -> bool:
        self.stats.compatibility_checks += 1
        return cover.is_compatible(self.relation)

    # -- moves ------------------------------------------------------------
    def expand(self, cover: MvCover) -> MvCover:
        """Raise input literals (and optionally output tags) greedily."""
        current = cover.copy()
        for index in range(len(current.cubes)):
            cube = current.cubes[index]
            raised_any = False
            for position in range(current.num_inputs):
                if cube.input_cube[position] == DASH:
                    continue
                candidate = MvCube(cube.input_cube.raise_var(position),
                                   cube.outputs)
                trial = current.copy()
                trial.cubes[index] = candidate
                if self.compatible(trial):
                    current = trial
                    cube = candidate
                    self.stats.expansions += 1
                    raised_any = True
                    if self.options.single_literal_expand:
                        break
            if self.options.expand_outputs and not (
                    self.options.single_literal_expand and raised_any):
                for j in range(current.num_outputs):
                    if j in cube.outputs:
                        continue
                    candidate = MvCube(cube.input_cube,
                                       cube.outputs | {j})
                    trial = current.copy()
                    trial.cubes[index] = candidate
                    if self.compatible(trial):
                        current = trial
                        cube = candidate
                        self.stats.expansions += 1
        return self._drop_contained(current)

    def _drop_contained(self, cover: MvCover) -> MvCover:
        """Single-cube containment on (input cube, output tags)."""
        kept: List[MvCube] = []
        order = sorted(cover.cubes,
                       key=lambda c: (-c.input_cube.size(), -len(c.outputs)))
        for cube in order:
            contained = any(
                other.input_cube.contains(cube.input_cube)
                and cube.outputs <= other.outputs
                for other in kept)
            if not contained:
                kept.append(cube)
        return MvCover(cover.num_inputs, cover.num_outputs, kept)

    def reduce(self, cover: MvCover) -> MvCover:
        """Shrink each cube as far as compatibility allows (prep for expand)."""
        current = cover.copy()
        for index in range(len(current.cubes)):
            changed = True
            while changed:
                changed = False
                cube = current.cubes[index]
                for position in range(current.num_inputs):
                    if cube.input_cube[position] != DASH:
                        continue
                    for value in (0, 1):
                        candidate = MvCube(
                            cube.input_cube.set_var(position, value),
                            cube.outputs)
                        trial = current.copy()
                        trial.cubes[index] = candidate
                        if self.compatible(trial):
                            current = trial
                            self.stats.reductions += 1
                            changed = True
                            break
                    if changed:
                        break
        return current

    def irredundant(self, cover: MvCover) -> MvCover:
        """Drop cubes whose removal keeps the cover compatible."""
        current = cover.copy()
        index = 0
        while index < len(current.cubes):
            trial = MvCover(current.num_inputs, current.num_outputs,
                            [c for i, c in enumerate(current.cubes)
                             if i != index])
            if self.compatible(trial):
                current = trial
                self.stats.removals += 1
            else:
                index += 1
        return current


def gyocro_solve(relation: BooleanRelation,
                 options: Optional[GyocroOptions] = None) -> GyocroResult:
    """Minimise a well-defined BR with the gyocro-style heuristic."""
    relation.require_well_defined()
    options = options or GyocroOptions()
    start = time.perf_counter()
    search = _Search(relation, options)

    if options.initial is not None:
        cover = options.initial.copy()
        if not search.compatible(cover):
            raise ValueError("initial cover is not compatible with the "
                             "relation")
    else:
        seed = quick_solve(relation)
        cover = MvCover.from_functions(relation, seed.functions)

    cover = search.irredundant(search.expand(cover))
    best = cover
    best_cost = best.cost()

    for _ in range(options.max_iterations):
        search.stats.iterations += 1
        trial = search.reduce(best.copy())
        trial = search.expand(trial)
        trial = search.irredundant(trial)
        cost = trial.cost()
        if cost < best_cost:
            best, best_cost = trial, cost
        else:
            break

    search.stats.runtime_seconds = time.perf_counter() - start
    cubes, literals = best_cost
    solution = best.to_solution(relation, float(cubes * 1000 + literals))
    return GyocroResult(solution, best, search.stats)
