"""A Herb-style heuristic BR minimiser (reference [18] of the paper).

Herb pioneered two-level BR minimisation with the espresso loop, but its
test-pattern-generation machinery could only *expand one variable at a
time* — the restriction the paper's Section 3 identifies as the source of
its narrower search space and higher runtime.  We model Herb as the gyocro
loop with that restriction switched on (and without multi-output tag
expansion, which Herb's formulation also lacked).
"""

from __future__ import annotations

from typing import Optional

from ..core.relation import BooleanRelation
from .gyocro import GyocroOptions, GyocroResult, gyocro_solve
from .mvcover import MvCover


def herb_solve(relation: BooleanRelation,
               initial: Optional[MvCover] = None,
               max_iterations: int = 20) -> GyocroResult:
    """Minimise a well-defined BR with the Herb-style restricted loop."""
    options = GyocroOptions(max_iterations=max_iterations,
                            single_literal_expand=True,
                            expand_outputs=False,
                            initial=initial)
    return gyocro_solve(relation, options)
