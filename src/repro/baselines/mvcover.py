"""Multiple-output cube covers for the two-level relation heuristics.

gyocro [33] and Herb [18] search over multiple-output SOP covers: each cube
has an input part (a :class:`repro.sop.Cube`) and an output part (the set of
outputs the cube feeds).  Output ``j`` of the cover is the disjunction of
the input parts of the cubes whose output part contains ``j``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from ..bdd.isop import isop
from ..bdd.manager import FALSE, BddManager
from ..core.relation import BooleanRelation
from ..core.solution import Solution
from ..sop.cube import Cube


@dataclass(frozen=True)
class MvCube:
    """One multiple-output product term."""

    input_cube: Cube
    outputs: FrozenSet[int]

    def literal_count(self) -> int:
        """Input literals (the conventional multiple-output SOP count)."""
        return self.input_cube.literal_count()

    def __str__(self) -> str:
        tags = "".join("1" if j in self.outputs else "0"
                       for j in range(max(self.outputs, default=-1) + 1))
        return "%s |%s" % (self.input_cube, tags)


class MvCover:
    """A multiple-output cover over ``num_inputs`` / ``num_outputs``."""

    def __init__(self, num_inputs: int, num_outputs: int,
                 cubes: Iterable[MvCube] = ()) -> None:
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.cubes: List[MvCube] = []
        for cube in cubes:
            self.append(cube)

    def append(self, cube: MvCube) -> None:
        if cube.input_cube.width != self.num_inputs:
            raise ValueError("input cube width mismatch")
        if any(j < 0 or j >= self.num_outputs for j in cube.outputs):
            raise ValueError("output tag out of range")
        if cube.outputs:
            self.cubes.append(cube)

    def copy(self) -> "MvCover":
        return MvCover(self.num_inputs, self.num_outputs, list(self.cubes))

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self):
        return iter(self.cubes)

    def __str__(self) -> str:
        return "\n".join(str(cube) for cube in self.cubes)

    # -- metrics -----------------------------------------------------------
    def cube_count(self) -> int:
        return len(self.cubes)

    def literal_count(self) -> int:
        return sum(cube.literal_count() for cube in self.cubes)

    def cost(self) -> Tuple[int, int]:
        """The gyocro objective: cubes first, then literals."""
        return (self.cube_count(), self.literal_count())

    # -- semantics -----------------------------------------------------------
    def function_nodes(self, relation: BooleanRelation) -> List[int]:
        """Per-output BDD nodes of the cover over the relation's inputs."""
        mgr = relation.mgr
        nodes = [FALSE] * self.num_outputs
        for cube in self.cubes:
            literals = {relation.inputs[index]: polarity
                        for index, polarity in
                        cube.input_cube.literals().items()}
            node = mgr.cube(literals)
            for j in cube.outputs:
                nodes[j] = mgr.or_(nodes[j], node)
        return nodes

    def is_compatible(self, relation: BooleanRelation) -> bool:
        """Does the cover denote a solution of the relation?"""
        return relation.is_compatible(self.function_nodes(relation))

    def to_solution(self, relation: BooleanRelation, cost: float) -> Solution:
        return Solution(relation.mgr,
                        tuple(self.function_nodes(relation)), cost)

    # -- construction from solutions -------------------------------------------
    @staticmethod
    def from_functions(relation: BooleanRelation,
                       functions: Sequence[int]) -> "MvCover":
        """ISOP each output and merge cubes with identical input parts."""
        mgr = relation.mgr
        position_of = {var: index
                       for index, var in enumerate(relation.inputs)}
        merged = {}
        for j, func in enumerate(functions):
            cover, _ = isop(mgr, func, func)
            for cube in cover:
                values = [2] * len(relation.inputs)
                for var, polarity in cube.items():
                    values[position_of[var]] = 1 if polarity else 0
                key = tuple(values)
                merged.setdefault(key, set()).add(j)
        result = MvCover(len(relation.inputs), len(relation.outputs))
        for values, outputs in sorted(merged.items()):
            result.append(MvCube(Cube(list(values)), frozenset(outputs)))
        return result
