"""Heuristic two-level baselines: gyocro [33] and Herb [18] re-creations."""

from .gyocro import GyocroOptions, GyocroResult, GyocroStats, gyocro_solve
from .herb import herb_solve
from .mvcover import MvCover, MvCube

__all__ = [
    "GyocroOptions",
    "GyocroResult",
    "GyocroStats",
    "MvCover",
    "MvCube",
    "gyocro_solve",
    "herb_solve",
]
