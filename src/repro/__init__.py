"""repro — a reproduction of the BREL Boolean-relation solver.

Baneres, Cortadella, Kishinevsky: *A Recursive Paradigm to Solve Boolean
Relations* (DAC 2004; extended in IEEE Trans. Computers 58(4), 2009).

The package is organised as layered subsystems (see DESIGN.md):

* :mod:`repro.api` — the official front door: :class:`Session`,
  declarative :class:`SolveRequest`/:class:`SolveReport`, named
  registries, batch solving;
* :mod:`repro.bdd` — hash-consed BDD engine (CUDD stand-in);
* :mod:`repro.sop` — two-level cube/cover machinery;
* :mod:`repro.core` — Boolean relations and the BREL solver;
* :mod:`repro.baselines` — gyocro / Herb heuristic re-creations;
* :mod:`repro.equations` — Boolean equation systems (paper §8);
* :mod:`repro.network` — SIS-like logic networks, algebraic script,
  technology mapping;
* :mod:`repro.decompose` — the §10 logic-decomposition application;
* :mod:`repro.benchdata` — seeded benchmark instances.

Quickstart::

    from repro import Session, SolveRequest

    session = Session()
    session.add_output_sets(
        "fig1", [{0b01}, {0b01}, {0b00, 0b11}, {0b10, 0b11}], 2, 2)
    report = session.solve(SolveRequest(relation="fig1"))
    print(report.sop)            # minimised SOP per output
    print(report.cost, report.compatible)

Batches run process-parallel, and every request round-trips through
JSON::

    requests = [SolveRequest(relation="fig1", cost=c)
                for c in ("size", "size2", "cubes")]
    for r in session.solve_many(requests, max_workers=2):
        print(r.summary())

The lower-level entry points remain available::

    from repro import BooleanRelation, solve_relation

    rows = [{0b01}, {0b01}, {0b00, 0b11}, {0b10, 0b11}]  # paper Fig. 1
    relation = BooleanRelation.from_output_sets(rows, 2, 2)
    result = solve_relation(relation)
    print(result.solution.describe())
"""

from .bdd import Bdd, BddManager
from .core import (BooleanRelation, BrelOptions, BrelResult, BrelSolver,
                   CancelToken, ExplorationStrategy, Improvement, Isf,
                   Misf, NotWellDefinedError, Partition, Solution,
                   SolveEvent, SolverStats, bdd_size_cost,
                   bdd_size_squared_cost, cube_count_cost, exact_solve,
                   literal_count_cost, partition_relation, quick_solve,
                   solve_exactly, solve_relation, weighted_cost)
from .equations import BooleanEquation, BooleanSystem
from .api import (Session, SolveReport, SolveRequest, register_cost,
                  register_minimizer, register_strategy, strategy_names)

__version__ = "1.1.0"

__all__ = [
    "Bdd",
    "BddManager",
    "BooleanEquation",
    "BooleanRelation",
    "BooleanSystem",
    "BrelOptions",
    "BrelResult",
    "BrelSolver",
    "Isf",
    "Misf",
    "NotWellDefinedError",
    "Partition",
    "Session",
    "Solution",
    "SolveReport",
    "SolveRequest",
    "SolverStats",
    "bdd_size_cost",
    "bdd_size_squared_cost",
    "cube_count_cost",
    "exact_solve",
    "literal_count_cost",
    "partition_relation",
    "quick_solve",
    "register_cost",
    "register_minimizer",
    "solve_exactly",
    "solve_relation",
    "weighted_cost",
    "__version__",
]
