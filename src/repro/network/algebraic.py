"""The algebraic restructuring script (SIS `script.algebraic` analogue).

Pipeline mirroring the SIS script the paper uses before mapping:

1. ``sweep`` — fold constants, buffers and inverters into their fanouts;
2. ``simplify`` — two-level minimisation of every node;
3. ``eliminate`` — collapse low-value nodes into their fanouts;
4. ``extract_kernels`` — greedy common-kernel extraction (gkx-style),
   sharing subexpressions across nodes;
5. final ``simplify`` + ``sweep``.

Cost is counted in SOP literals (Table 2's ALG column).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..sop.cover import Cover
from ..sop.espresso import espresso_isf
from .kernels import (Term, Terms, algebraic_divide, kernels, literal_count,
                      node_terms, terms_to_cover)
from .netlist import LogicNetwork, Node


def _set_node_terms(network: LogicNetwork, name: str,
                    terms: Set[Term]) -> None:
    """Replace a node's function with an algebraic expression."""
    fanins, cover = terms_to_cover(terms)
    node = network.nodes[name]
    node.fanins = fanins
    node.cover = cover


def _constant_value(node: Node) -> Optional[bool]:
    """The constant a node computes, if any (0 cubes = FALSE, etc.)."""
    if node.cover.cube_count() == 0:
        return False
    if all(cube.is_universe() for cube in node.cover):
        return True
    return None


def sweep(network: LogicNetwork) -> int:
    """Fold buffers, inverters and constants; drop dangling nodes.

    Returns the number of nodes removed.  Nodes feeding primary outputs
    or latches directly are kept (their name is the interface).
    """
    removed = 0
    protected = set(network.combinational_outputs())
    changed = True
    while changed:
        changed = False
        for name in list(network.nodes):
            if name in protected:
                continue
            node = network.nodes[name]
            constant = _constant_value(node)
            if constant is not None:
                replace = ("const", constant)
            elif node.is_buffer():
                replace = ("alias", (node.fanins[0], True))
            elif node.is_inverter():
                replace = ("alias", (node.fanins[0], False))
            else:
                continue
            for user_name in list(network.nodes):
                user = network.nodes[user_name]
                if name not in user.fanins:
                    continue
                terms = set(node_terms(user))
                new_terms: Set[Term] = set()
                for term in terms:
                    term = set(term)
                    pos = (name, True) in term
                    neg = (name, False) in term
                    term.discard((name, True))
                    term.discard((name, False))
                    if replace[0] == "const":
                        value = replace[1]
                        if (pos and not value) or (neg and value):
                            continue  # term dies
                        new_terms.add(frozenset(term))
                    else:
                        target, same = replace[1]
                        if pos:
                            term.add((target, same))
                        if neg:
                            term.add((target, not same))
                        new_terms.add(frozenset(term))
                _set_node_terms(network, user_name, new_terms)
            del network.nodes[name]
            removed += 1
            changed = True
    removed += network.sweep_dangling()
    return removed


#: Nodes wider/larger than this skip two-level minimisation: the espresso
#: complement is exponential in the fanin count (SIS used the same kind of
#: escape hatch).
SIMPLIFY_MAX_FANINS = 12
SIMPLIFY_MAX_CUBES = 96


def simplify(network: LogicNetwork) -> None:
    """Espresso-minimise every node's local cover (no external DC set)."""
    for name in list(network.nodes):
        node = network.nodes[name]
        if not node.fanins:
            continue
        if (len(node.fanins) > SIMPLIFY_MAX_FANINS
                or node.cover.cube_count() > SIMPLIFY_MAX_CUBES):
            node.cover = node.cover.scc()
            continue
        node.cover = espresso_isf(node.cover)


def eliminate(network: LogicNetwork, threshold: int = 0) -> int:
    """Collapse nodes whose elimination value is below ``threshold``.

    The value of a node is the literal growth its elimination causes
    (SIS convention): ``(uses - 1) * (lits - 1) - 1`` approximately; nodes
    with value below the threshold are substituted into their fanouts.
    Returns the number of eliminated nodes.
    """
    eliminated = 0
    protected = set(network.combinational_outputs())
    changed = True
    while changed:
        changed = False
        fanouts = network.fanouts()
        for name in list(network.nodes):
            if name in protected:
                continue
            node = network.nodes[name]
            users = fanouts.get(name, [])
            if not users:
                continue
            lits = node.literal_count()
            value = (len(users) - 1) * (lits - 1) - 1
            if value >= threshold:
                continue
            if not _substitute_node(network, name):
                continue
            eliminated += 1
            changed = True
            break  # fanouts changed; recompute
    network.sweep_dangling()
    return eliminated


def _substitute_node(network: LogicNetwork, name: str) -> bool:
    """Inline ``name`` into every fanout (complement via cover complement)."""
    node = network.nodes[name]
    if not node.fanins:
        return False
    pos_terms = node_terms(node)
    neg_names, neg_cover = node.fanins, node.cover.complement()
    neg_node = Node("__tmp", list(node.fanins), neg_cover)
    neg_terms = node_terms(neg_node)
    for user_name in list(network.nodes):
        if user_name == name:
            continue
        user = network.nodes[user_name]
        if name not in user.fanins:
            continue
        new_terms: Set[Term] = set()
        for term in node_terms(user):
            pos = (name, True) in term
            neg = (name, False) in term
            base = frozenset(lit for lit in term if lit[0] != name)
            if not pos and not neg:
                new_terms.add(base)
                continue
            expansion = [frozenset()]
            if pos:
                expansion = [e | p for e in expansion for p in pos_terms]
            if neg:
                expansion = [e | n for e in expansion for n in neg_terms]
            for extra in expansion:
                new_terms.add(base | extra)
        _set_node_terms(network, user_name, new_terms)
    del network.nodes[name]
    return True


def _best_kernel_candidate(network: LogicNetwork):
    """The (kernel, value) pair with the best literal savings, or None."""
    candidates: Dict[Terms, List[str]] = {}
    node_term_cache: Dict[str, Terms] = {}
    for name, node in network.nodes.items():
        terms = node_terms(node)
        node_term_cache[name] = terms
        if len(terms) < 2:
            continue
        for kernel, _cokernel in kernels(terms):
            if literal_count(kernel) < 2 or len(kernel) < 2:
                continue
            candidates.setdefault(kernel, []).append(name)

    def canonical(expression: Terms):
        return tuple(sorted(tuple(sorted(term)) for term in expression))

    best_kernel: Optional[Terms] = None
    best_value = 0
    best_key = None
    for kernel, users in candidates.items():
        value = 0
        for user in set(users):
            quotient, _ = algebraic_divide(node_term_cache[user], kernel)
            if not quotient:
                continue
            old = sum(len(q) + len(k) for q in quotient for k in kernel)
            new = sum(len(q) + 1 for q in quotient)
            value += old - new
        value -= literal_count(kernel)
        key = (value, canonical(kernel))
        # Ties broken on the canonical form: results are independent of
        # set/dict iteration order (PYTHONHASHSEED).
        if value > best_value or (value == best_value
                                  and best_key is not None
                                  and key > best_key):
            best_value = value
            best_kernel = kernel
            best_key = key
    return best_kernel, best_value


def _best_cube_candidate(network: LogicNetwork):
    """The best single-cube divisor (>= 2 literals), or None.

    A cube ``d`` with ``c`` literals contained in ``k`` terms across the
    network saves ``k*c - k - c`` literals when materialised as a node
    (each occurrence keeps one literal for the new signal).
    """
    from itertools import combinations

    counts: Dict[Term, int] = {}
    for node in network.nodes.values():
        for term in node_terms(node):
            literals = sorted(term)
            if len(literals) < 2:
                continue
            for pair in combinations(literals, 2):
                counts[frozenset(pair)] = counts.get(frozenset(pair), 0) + 1

    best_cube: Optional[Term] = None
    best_value = 0
    best_key = None
    for cube, occurrences in counts.items():
        if occurrences < 2:
            continue
        size = len(cube)
        value = occurrences * size - occurrences - size
        key = (value, tuple(sorted(cube)))
        if value > best_value or (value == best_value
                                  and best_key is not None
                                  and key > best_key):
            best_value = value
            best_cube = cube
            best_key = key
    return best_cube, best_value


def extract_kernels(network: LogicNetwork, max_new_nodes: int = 50) -> int:
    """Greedy common-divisor extraction across the whole network.

    Each round considers both multi-cube kernels and single-cube divisors
    (the two divisor families of SIS ``fx``), materialises the one with
    the best literal savings as a new node, and rewrites the users through
    algebraic division.  Returns the number of new nodes.
    """
    created = 0
    for _ in range(max_new_nodes):
        kernel, kernel_value = _best_kernel_candidate(network)
        cube, cube_value = _best_cube_candidate(network)
        if kernel is None and cube is None:
            break

        if kernel is not None and kernel_value >= cube_value:
            divisor = kernel
        else:
            divisor = frozenset({cube})
        new_name = network.fresh_name("k")
        fanins, cover = terms_to_cover(divisor)
        network.add_node(new_name, fanins, cover)
        if len(divisor) == 1:
            # Single-cube divisor: replace the cube inside each term.
            (cube_literals,) = divisor
            for user in list(network.nodes):
                if user == new_name:
                    continue
                terms = node_terms(network.nodes[user])
                if not any(cube_literals <= term for term in terms):
                    continue
                rewritten = set()
                for term in terms:
                    if cube_literals <= term:
                        rewritten.add((term - cube_literals)
                                      | {(new_name, True)})
                    else:
                        rewritten.add(term)
                _set_node_terms(network, user, rewritten)
        else:
            for user in list(network.nodes):
                if user == new_name:
                    continue
                terms = node_terms(network.nodes[user])
                quotient, remainder = algebraic_divide(terms, divisor)
                if not quotient:
                    continue
                rewritten: Set[Term] = set()
                for q in quotient:
                    rewritten.add(q | {(new_name, True)})
                rewritten |= remainder
                _set_node_terms(network, user, rewritten)
        created += 1
    return created


def algebraic_script(network: LogicNetwork,
                     extract_rounds: int = 50) -> LogicNetwork:
    """The full restructuring pipeline; operates on a copy."""
    result = network.copy()
    sweep(result)
    simplify(result)
    eliminate(result, threshold=0)
    extract_kernels(result, max_new_nodes=extract_rounds)
    simplify(result)
    sweep(result)
    result.validate()
    return result
