"""Algebraic division and kernel extraction (the SIS `gkx`/`fx` family).

The algebraic model treats a literal and its complement as independent
symbols; a node function is a set of *terms*, each term a frozenset of
``(signal_name, polarity)`` literals.  On top of that model this module
provides weak (algebraic) division, the recursive kernel generator of
Brayton/McMullen, and helpers to convert to and from the positional-cube
covers stored in the network.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..sop.cover import Cover
from ..sop.cube import DASH, Cube
from .netlist import LogicNetwork, Node

#: A literal in the algebraic model.
Literal = Tuple[str, bool]
#: A product term: a set of literals.
Term = FrozenSet[Literal]
#: An algebraic expression: a set of terms (sum of products).
Terms = FrozenSet[Term]


def node_terms(node: Node) -> Terms:
    """Convert a node's positional cover to algebraic terms."""
    terms: Set[Term] = set()
    for cube in node.cover:
        literals = []
        for position, value in enumerate(cube.values):
            if value != DASH:
                literals.append((node.fanins[position], bool(value)))
        terms.add(frozenset(literals))
    return frozenset(terms)


def terms_to_cover(terms: Iterable[Term]) -> Tuple[List[str], Cover]:
    """Convert algebraic terms back to (fanins, positional cover).

    Terms containing a literal and its complement denote FALSE and are
    dropped (substitution can produce them).
    """
    term_list = [term for term in terms
                 if not any((name, not polarity) in term
                            for name, polarity in term)]
    # Canonical cube order: output is independent of set iteration order.
    term_list.sort(key=lambda term: tuple(sorted(term)))
    names = sorted({name for term in term_list for name, _ in term})
    position = {name: index for index, name in enumerate(names)}
    cubes = []
    for term in term_list:
        values = [DASH] * len(names)
        for name, polarity in term:
            values[position[name]] = 1 if polarity else 0
        cubes.append(Cube(values))
    return names, Cover(len(names), cubes)


def literal_count(terms: Iterable[Term]) -> int:
    """Total literal count of an algebraic expression."""
    return sum(len(term) for term in terms)


# ----------------------------------------------------------------------
# Algebraic (weak) division
# ----------------------------------------------------------------------
def divide_by_term(terms: Iterable[Term], divisor: Term) -> Set[Term]:
    """Quotient of an expression by a single product term."""
    return {term - divisor for term in terms if divisor <= term}


def algebraic_divide(terms: Terms, divisor: Iterable[Term]
                     ) -> Tuple[Set[Term], Set[Term]]:
    """Weak division: ``terms = quotient * divisor + remainder``.

    Quotient is the intersection of the per-term quotients; remainder is
    whatever the product fails to cover.  Standard Brayton/McMullen.
    """
    divisor_list = list(divisor)
    if not divisor_list:
        raise ValueError("division by the zero expression")
    quotient: Optional[Set[Term]] = None
    for d_term in divisor_list:
        partial = divide_by_term(terms, d_term)
        quotient = partial if quotient is None else (quotient & partial)
        if not quotient:
            return set(), set(terms)
    assert quotient is not None
    product = {q | d for q in quotient for d in divisor_list}
    remainder = set(terms) - product
    return quotient, remainder


def largest_common_cube(terms: Iterable[Term]) -> Term:
    """The intersection of all terms (their largest common cube)."""
    iterator = iter(terms)
    try:
        common = set(next(iterator))
    except StopIteration:
        return frozenset()
    for term in iterator:
        common &= term
        if not common:
            break
    return frozenset(common)


def make_cube_free(terms: Iterable[Term]) -> Terms:
    """Strip the largest common cube from an expression."""
    term_list = list(terms)
    common = largest_common_cube(term_list)
    if not common:
        return frozenset(term_list)
    return frozenset(term - common for term in term_list)


def is_cube_free(terms: Iterable[Term]) -> bool:
    return not largest_common_cube(terms)


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
def kernels(terms: Terms) -> Set[Tuple[Terms, Term]]:
    """All (kernel, co-kernel) pairs of an expression.

    A kernel is a cube-free quotient of the expression by a cube (the
    co-kernel).  The expression itself is a kernel when cube-free.
    """
    literal_order: List[Literal] = sorted(
        {lit for term in terms for lit in term})
    index_of = {lit: i for i, lit in enumerate(literal_order)}
    results: Set[Tuple[Terms, Term]] = set()

    def rec(current: Terms, cokernel: Term, min_index: int) -> None:
        for position in range(min_index, len(literal_order)):
            literal = literal_order[position]
            containing = [term for term in current if literal in term]
            if len(containing) < 2:
                continue
            quotient = {term - {literal} for term in containing}
            common = largest_common_cube(quotient)
            # Skip if a smaller-indexed literal divides the quotient:
            # that branch was (or will be) produced elsewhere.
            if any(index_of.get(lit, len(literal_order)) < position
                   for lit in common):
                continue
            free = frozenset(term - common for term in quotient)
            new_cokernel = frozenset(cokernel | {literal} | common)
            results.add((free, new_cokernel))
            rec(free, new_cokernel, position + 1)

    if is_cube_free(terms) and len(terms) > 1:
        results.add((frozenset(terms), frozenset()))
    rec(frozenset(terms), frozenset(), 0)
    return results


def kernel_value(kernel: Terms, uses: Sequence[Tuple[Terms, Set[Term]]]
                 ) -> int:
    """Literal savings of extracting ``kernel`` given its uses.

    ``uses`` pairs each using expression with the quotient it would keep.
    Savings model: each use rewrites ``Q*k + R`` costing
    ``lits(Q) + |Q|`` (one new literal per quotient term) instead of
    ``lits(Q*k)``; the kernel body itself is paid once.
    """
    kernel_lits = literal_count(kernel)
    total = 0
    for terms, quotient in uses:
        if not quotient:
            continue
        old = sum(len(q) + len(k) for q in quotient for k in kernel)
        new = sum(len(q) + 1 for q in quotient)
        total += old - new
    return total - kernel_lits
