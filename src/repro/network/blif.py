"""BLIF (Berkeley Logic Interchange Format) reader and writer.

Supports the subset the flows need: ``.model``, ``.inputs``, ``.outputs``,
``.names`` (SOP tables with ``0/1/-`` input plane and a constant output
column — on-set *or* off-set form), ``.latch`` (with optional
``<type> <control>`` pair and init value) and ``.end``.  This is the
format SIS used for the paper's ISCAS'89 experiments.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sop.cover import Cover
from ..sop.cube import Cube
from .netlist import LogicNetwork, Node


class BlifError(ValueError):
    """Raised on malformed BLIF text."""


def _logical_lines(text: str) -> List[str]:
    """Strip comments, join continuation lines, drop blanks."""
    joined: List[str] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        joined.append((pending + line).strip())
        pending = ""
    if pending.strip():
        joined.append(pending.strip())
    return joined


def parse_blif(text: str) -> LogicNetwork:
    """Parse BLIF text into a :class:`LogicNetwork`."""
    lines = _logical_lines(text)
    network = LogicNetwork()
    index = 0
    current_names: Optional[Tuple[List[str], List[str]]] = None

    def flush_names() -> None:
        nonlocal current_names
        if current_names is None:
            return
        signals, rows = current_names
        *fanins, output = signals
        on_rows = []
        off_rows = []
        for row in rows:
            parts = row.split()
            if len(parts) == 1 and not fanins:
                plane, value = "", parts[0]
            elif len(parts) == 2:
                plane, value = parts
            else:
                raise BlifError("malformed .names row %r" % row)
            if len(plane) != len(fanins):
                raise BlifError("row %r arity mismatch for %r"
                                % (row, output))
            if value == "1":
                on_rows.append(plane)
            elif value == "0":
                off_rows.append(plane)
            else:
                raise BlifError("output column must be 0 or 1 in %r" % row)
        if on_rows and off_rows:
            raise BlifError("table for %r mixes on-set and off-set rows"
                            % output)
        if off_rows:
            # Off-set table: the function is the complement of the rows.
            off = Cover(len(fanins), [Cube.from_str(row)
                                      for row in off_rows])
            cover = off.complement()
        else:
            cover = Cover(len(fanins),
                          [Cube.from_str(row) for row in on_rows])
        network.add_node(output, fanins, cover)
        current_names = None

    for line in lines:
        if line.startswith(".model"):
            flush_names()
            parts = line.split()
            network.name = parts[1] if len(parts) > 1 else "network"
        elif line.startswith(".inputs"):
            flush_names()
            for name in line.split()[1:]:
                network.add_input(name)
        elif line.startswith(".outputs"):
            flush_names()
            for name in line.split()[1:]:
                network.add_output(name)
        elif line.startswith(".latch"):
            flush_names()
            parts = line.split()
            if len(parts) < 3:
                raise BlifError("malformed .latch line %r" % line)
            # .latch <input> <output> [<type> <control>] [<init-val>]
            rest = parts[3:]
            trigger = clock = None
            init_text = None
            if len(rest) == 1:
                init_text = rest[0]
            elif len(rest) in (2, 3):
                trigger, clock = rest[0], rest[1]
                if trigger not in ("fe", "re", "ah", "al", "as"):
                    raise BlifError("unknown latch type %r in %r"
                                    % (trigger, line))
                if len(rest) == 3:
                    init_text = rest[2]
            elif rest:
                raise BlifError("malformed .latch line %r" % line)
            if init_text is None:
                init = 0
            elif init_text in ("0", "1", "2", "3"):
                init = int(init_text)
            else:
                raise BlifError("latch init value must be 0-3 in %r"
                                % line)
            network.add_latch(parts[1], parts[2], init,
                              trigger=trigger, clock=clock)
        elif line.startswith(".names"):
            flush_names()
            signals = line.split()[1:]
            if not signals:
                raise BlifError(".names needs at least an output")
            current_names = (signals, [])
        elif line.startswith(".end"):
            flush_names()
            break
        elif line.startswith("."):
            flush_names()  # unknown directives are skipped
        else:
            if current_names is None:
                raise BlifError("table row outside .names: %r" % line)
            current_names[1].append(line)
    flush_names()
    network.validate()
    return network


def write_blif(network: LogicNetwork) -> str:
    """Serialise a network back to BLIF text."""
    lines = [".model %s" % network.name]
    if network.inputs:
        lines.append(".inputs %s" % " ".join(network.inputs))
    if network.outputs:
        lines.append(".outputs %s" % " ".join(network.outputs))
    for latch in network.latches:
        if latch.trigger is not None:
            lines.append(".latch %s %s %s %s %d"
                         % (latch.input, latch.output, latch.trigger,
                            latch.clock, latch.init))
        else:
            lines.append(".latch %s %s %d" % (latch.input, latch.output,
                                              latch.init))
    for name in network.topological_order():
        node = network.nodes[name]
        lines.append(".names %s" % " ".join(node.fanins + [node.name]))
        if not node.fanins:
            if node.cover.cube_count() > 0:
                lines.append("1")
        else:
            for cube in node.cover:
                lines.append("%s 1" % cube)
    lines.append(".end")
    return "\n".join(lines) + "\n"
