"""Algebraic factoring (SIS ``print_factor`` / quick-factor analogue).

SIS reports node complexity in *factored literals*: the literal count of a
good factored form, which models multilevel implementation cost better
than the flat SOP count.  This module implements the classical
quick-factor recursion over the algebraic term representation:

    factor(F):
        if F is a single term: AND of its literals
        pick the most frequent literal l
        (Q, R) = divide(F, l)
        return  l * factor(Q)  +  factor(R)

and exposes factored literal counting plus pretty-printing for reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from .kernels import Literal, Term, Terms, divide_by_term
from .netlist import LogicNetwork, Node
from .kernels import node_terms


class FactoredExpr:
    """Base class of factored-form nodes."""

    def literal_count(self) -> int:
        raise NotImplementedError

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        raise NotImplementedError

    def render(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class FactoredLiteral(FactoredExpr):
    name: str
    polarity: bool

    def literal_count(self) -> int:
        return 1

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        value = assignment[self.name]
        return value if self.polarity else not value

    def render(self) -> str:
        return self.name if self.polarity else self.name + "'"


@dataclass(frozen=True)
class FactoredConst(FactoredExpr):
    value: bool

    def literal_count(self) -> int:
        return 0

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return self.value

    def render(self) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True)
class FactoredAnd(FactoredExpr):
    operands: Tuple[FactoredExpr, ...]

    def literal_count(self) -> int:
        return sum(op.literal_count() for op in self.operands)

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return all(op.evaluate(assignment) for op in self.operands)

    def render(self) -> str:
        parts = []
        for op in self.operands:
            text = op.render()
            if isinstance(op, FactoredOr):
                text = "(%s)" % text
            parts.append(text)
        return "*".join(parts)


@dataclass(frozen=True)
class FactoredOr(FactoredExpr):
    operands: Tuple[FactoredExpr, ...]

    def literal_count(self) -> int:
        return sum(op.literal_count() for op in self.operands)

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return any(op.evaluate(assignment) for op in self.operands)

    def render(self) -> str:
        return " + ".join(op.render() for op in self.operands)


def _most_frequent_literal(terms: Sequence[Term]) -> Optional[Literal]:
    counts: Dict[Literal, int] = {}
    for term in terms:
        for literal in term:
            counts[literal] = counts.get(literal, 0) + 1
    best: Optional[Literal] = None
    best_count = 1
    for literal in sorted(counts):
        if counts[literal] > best_count:
            best = literal
            best_count = counts[literal]
    return best


def factor_terms(terms: Terms) -> FactoredExpr:
    """Quick-factor an algebraic expression."""
    term_list = sorted(terms, key=lambda term: tuple(sorted(term)))
    if not term_list:
        return FactoredConst(False)
    if any(not term for term in term_list):
        return FactoredConst(True)
    if len(term_list) == 1:
        literals = tuple(FactoredLiteral(name, polarity)
                         for name, polarity in sorted(term_list[0]))
        if len(literals) == 1:
            return literals[0]
        return FactoredAnd(literals)

    pivot = _most_frequent_literal(term_list)
    if pivot is None:
        # No literal appears twice: plain sum of products.
        products = tuple(factor_terms(frozenset({term}))
                         for term in term_list)
        return FactoredOr(products)

    with_pivot = [term for term in term_list if pivot in term]
    rest = [term for term in term_list if pivot not in term]
    quotient = frozenset(divide_by_term(with_pivot, frozenset({pivot})))
    factored = FactoredAnd((
        FactoredLiteral(pivot[0], pivot[1]),
        factor_terms(quotient),
    ))
    if not rest:
        return factored
    return FactoredOr((factored, factor_terms(frozenset(rest))))


def factor_node(node: Node) -> FactoredExpr:
    """Factored form of a network node's local function."""
    return factor_terms(node_terms(node))


def factored_literal_count(network: LogicNetwork) -> int:
    """Total factored literals of a network (the SIS reporting metric)."""
    return sum(factor_node(node).literal_count()
               for node in network.nodes.values())
