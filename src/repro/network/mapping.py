"""Tree-covering technology mapping (SIS `map` analogue).

Classic three-stage mapper from Rudell's thesis [25], the tool behind the
paper's AREA and delay columns:

1. **Technology decomposition** — every node's SOP becomes a balanced
   AND/OR tree, lowered onto a NAND2/INV *subject graph* with structural
   hashing;
2. **Tree partition** — multi-fanout subject nodes and the combinational
   outputs become tree roots; patterns never cross tree boundaries;
3. **Dynamic programming** — per tree, the minimum-area (or
   minimum-arrival) cover over the library's pattern trees.

Area is the sum of chosen gate areas; delay is the longest gate-delay path
(load-independent pin delays — see DESIGN.md Section 4 for why ratios are
the meaningful output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .library import Gate, Pattern, default_library
from .netlist import LogicNetwork
from .kernels import node_terms

# Subject node kinds.
LEAF = "leaf"
NAND = "nand"
INV = "inv"
CONST0 = "const0"
CONST1 = "const1"


class SubjectGraph:
    """A structurally-hashed NAND2/INV DAG for a network's frame."""

    def __init__(self) -> None:
        self.kinds: List[str] = []
        self.children: List[Tuple[int, ...]] = []
        self.leaf_names: Dict[int, str] = {}
        self._hash: Dict[Tuple, int] = {}
        self.roots: Dict[str, int] = {}

    # -- construction ----------------------------------------------------
    def _make(self, kind: str, children: Tuple[int, ...] = ()) -> int:
        if kind == INV:
            child = children[0]
            if self.kinds[child] == INV:        # double inversion folds
                return self.children[child][0]
            if self.kinds[child] == CONST0:
                return self._make(CONST1)
            if self.kinds[child] == CONST1:
                return self._make(CONST0)
        if kind == NAND:
            children = tuple(sorted(children))
        key = (kind, children)
        node = self._hash.get(key)
        if node is None:
            node = len(self.kinds)
            self.kinds.append(kind)
            self.children.append(children)
            self._hash[key] = node
        return node

    def leaf(self, name: str) -> int:
        key = (LEAF, name)
        node = self._hash.get(key)
        if node is None:
            node = len(self.kinds)
            self.kinds.append(LEAF)
            self.children.append(())
            self._hash[key] = node
            self.leaf_names[node] = name
        return node

    def const(self, value: bool) -> int:
        return self._make(CONST1 if value else CONST0)

    def nand(self, a: int, b: int) -> int:
        return self._make(NAND, (a, b))

    def inv(self, a: int) -> int:
        return self._make(INV, (a,))

    def and_(self, a: int, b: int) -> int:
        return self.inv(self.nand(a, b))

    def or_(self, a: int, b: int) -> int:
        return self.nand(self.inv(a), self.inv(b))

    def balanced(self, op, operands: List[int]) -> int:
        """Reduce a list with a balanced binary tree (delay-friendly)."""
        items = list(operands)
        if not items:
            raise ValueError("empty operand list")
        while len(items) > 1:
            merged = []
            for index in range(0, len(items) - 1, 2):
                merged.append(op(items[index], items[index + 1]))
            if len(items) % 2:
                merged.append(items[-1])
            items = merged
        return items[0]

    # -- queries ----------------------------------------------------------
    def live_nodes(self) -> Set[int]:
        """Nodes reachable from the roots (construction leaves garbage)."""
        live: Set[int] = set()
        stack = list(self.roots.values())
        while stack:
            node = stack.pop()
            if node in live:
                continue
            live.add(node)
            stack.extend(self.children[node])
        return live

    def fanout_counts(self) -> Dict[int, int]:
        """Per-node fanout, counted over live nodes only."""
        counts: Dict[int, int] = {}
        for node in self.live_nodes():
            for kid in self.children[node]:
                counts[kid] = counts.get(kid, 0) + 1
        return counts


def build_subject_graph(network: LogicNetwork) -> SubjectGraph:
    """Lower a network's combinational frame onto a subject graph."""
    graph = SubjectGraph()
    signal_node: Dict[str, int] = {}
    for name in network.combinational_inputs():
        signal_node[name] = graph.leaf(name)
    for name in network.topological_order():
        node = network.nodes[name]
        if not node.fanins:
            value = node.cover.cube_count() > 0
            signal_node[name] = graph.const(value)
            continue
        products: List[int] = []
        for cube in node.cover:
            literals: List[int] = []
            for position, value in enumerate(cube.values):
                if value == 2:
                    continue
                base = signal_node[node.fanins[position]]
                literals.append(base if value == 1 else graph.inv(base))
            if not literals:
                products.append(graph.const(True))
            else:
                products.append(graph.balanced(graph.and_, literals))
        if not products:
            signal_node[name] = graph.const(False)
        else:
            signal_node[name] = graph.balanced(graph.or_, products)
    for name in network.combinational_outputs():
        graph.roots[name] = signal_node[name]
    return graph


# ----------------------------------------------------------------------
# Pattern matching
# ----------------------------------------------------------------------
def _match(graph: SubjectGraph, pattern: Pattern, node: int,
           boundaries: Set[int], bindings: Dict[str, int], top: bool
           ) -> List[Dict[str, int]]:
    """All consistent leaf bindings for ``pattern`` rooted at ``node``."""
    if isinstance(pattern, str):
        bound = bindings.get(pattern)
        if bound is not None and bound != node:
            return []
        new_bindings = dict(bindings)
        new_bindings[pattern] = node
        return [new_bindings]
    # Non-leaf pattern nodes may not sit on a tree boundary (except the
    # match root itself).
    if not top and node in boundaries:
        return []
    kind = pattern[0]
    if kind == INV:
        if graph.kinds[node] != INV:
            return []
        return _match(graph, pattern[1], graph.children[node][0],
                      boundaries, bindings, False)
    if kind == NAND:
        if graph.kinds[node] != NAND:
            return []
        left, right = graph.children[node]
        results = []
        for p_first, p_second in ((pattern[1], pattern[2]),
                                  (pattern[2], pattern[1])):
            for partial in _match(graph, p_first, left, boundaries,
                                  bindings, False):
                results.extend(_match(graph, p_second, right, boundaries,
                                      partial, False))
        # Deduplicate identical bindings from symmetric patterns.
        unique = []
        seen = set()
        for result in results:
            key = tuple(sorted(result.items()))
            if key not in seen:
                seen.add(key)
                unique.append(result)
        return unique
    raise ValueError("unknown pattern kind %r" % kind)


@dataclass
class MappedGate:
    """One gate instance in the mapped netlist."""

    gate: Gate
    output: int            # subject node implemented
    inputs: Tuple[int, ...]  # subject nodes feeding the gate


@dataclass
class MappingResult:
    """Area/delay/structure of one mapping run."""

    area: float
    delay: float
    gates: List[MappedGate]
    mode: str
    arrival: Dict[int, float] = field(default_factory=dict)

    def gate_count(self) -> int:
        return len(self.gates)

    def histogram(self) -> Dict[str, int]:
        result: Dict[str, int] = {}
        for mapped in self.gates:
            result[mapped.gate.name] = result.get(mapped.gate.name, 0) + 1
        return result


def map_network(network: LogicNetwork,
                library: Optional[Sequence[Gate]] = None,
                mode: str = "area") -> MappingResult:
    """Map a network onto the library; ``mode`` is ``"area"`` or ``"delay"``.

    Area mode minimises total gate area per tree; delay mode minimises the
    arrival time at every root.  Both report the other metric as measured
    on the chosen cover.
    """
    if mode not in ("area", "delay"):
        raise ValueError("mode must be 'area' or 'delay'")
    gates = list(library) if library is not None else default_library()
    graph = build_subject_graph(network)

    live = graph.live_nodes()
    fanouts = graph.fanout_counts()
    boundaries: Set[int] = set()
    for node, kind in enumerate(graph.kinds):
        if kind in (LEAF, CONST0, CONST1):
            boundaries.add(node)
        elif fanouts.get(node, 0) > 1:
            boundaries.add(node)
    boundaries |= set(graph.roots.values())

    # Topological order of the whole graph (ids are created bottom-up).
    arrival: Dict[int, float] = {}
    chosen: Dict[int, Tuple[Gate, Dict[str, int]]] = {}
    best: Dict[int, float] = {}

    for node in range(len(graph.kinds)):
        if node not in live:
            continue
        kind = graph.kinds[node]
        if kind in (LEAF, CONST0, CONST1):
            best[node] = 0.0
            arrival[node] = 0.0
            continue
        best_cost = None
        best_choice = None
        for gate in gates:
            for bindings in _match(graph, gate.pattern, node, boundaries,
                                   {}, True):
                leaf_nodes = [bindings[name]
                              for name in gate.leaf_names()]
                if any(leaf not in best for leaf in leaf_nodes):
                    continue  # leaf above us topologically: impossible
                if mode == "area":
                    internal = [leaf for leaf in leaf_nodes
                                if leaf not in boundaries]
                    cost = gate.area + sum(best[leaf]
                                           for leaf in internal)
                    # Boundary leaves are paid by their own tree.
                    tie = gate.delay + max(
                        [arrival[leaf] for leaf in leaf_nodes] or [0.0])
                else:
                    cost = gate.delay + max(
                        [arrival[leaf] for leaf in leaf_nodes] or [0.0])
                    internal = [leaf for leaf in leaf_nodes
                                if leaf not in boundaries]
                    tie = gate.area + sum(best[leaf] for leaf in internal)
                key = (cost, tie)
                if best_cost is None or key < best_cost:
                    best_cost = key
                    best_choice = (gate, bindings)
        if best_choice is None:
            raise RuntimeError("no library gate matches subject node %d"
                               % node)
        gate, bindings = best_choice
        chosen[node] = best_choice
        leaf_nodes = [bindings[name] for name in gate.leaf_names()]
        if mode == "area":
            internal = [leaf for leaf in leaf_nodes
                        if leaf not in boundaries]
            best[node] = gate.area + sum(best[leaf] for leaf in internal)
            arrival[node] = gate.delay + max(
                [arrival[leaf] for leaf in leaf_nodes] or [0.0])
        else:
            arrival[node] = gate.delay + max(
                [arrival[leaf] for leaf in leaf_nodes] or [0.0])
            internal = [leaf for leaf in leaf_nodes
                        if leaf not in boundaries]
            best[node] = gate.area + sum(best[leaf] for leaf in internal)

    # Emit gates: walk chosen covers from every boundary/root.
    emitted: Dict[int, MappedGate] = {}

    def emit(node: int) -> None:
        if node in emitted or graph.kinds[node] in (LEAF, CONST0, CONST1):
            return
        gate, bindings = chosen[node]
        leaf_nodes = tuple(bindings[name] for name in gate.leaf_names())
        emitted[node] = MappedGate(gate, node, leaf_nodes)
        for leaf in leaf_nodes:
            emit(leaf)

    for root in graph.roots.values():
        emit(root)

    total_area = sum(mapped.gate.area for mapped in emitted.values())
    total_delay = max([arrival[root] for root in graph.roots.values()]
                      or [0.0])
    return MappingResult(total_area, total_delay, list(emitted.values()),
                         mode, arrival)
