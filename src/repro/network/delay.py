"""Delay reporting utilities over mapped netlists (`speed_up` analogue).

The paper's delay flow runs SIS ``speed_up`` (balanced re-decomposition)
before mapping.  Our technology decomposition already builds balanced
AND/OR trees (see :mod:`repro.network.mapping`), so the delay-oriented
flow is: algebraic script → balanced decomposition → delay-mode mapping.
This module adds the reporting helpers the benchmarks print.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .library import Gate
from .mapping import LEAF, MappedGate, MappingResult


def critical_path(result: MappingResult) -> List[MappedGate]:
    """The chain of mapped gates realising the reported delay."""
    by_output = {mapped.output: mapped for mapped in result.gates}
    if not result.gates:
        return []
    # Start from the gate whose arrival equals the total delay.
    current = max(result.gates,
                  key=lambda mapped: result.arrival.get(mapped.output, 0.0))
    path = [current]
    while True:
        candidates = [by_output[leaf] for leaf in current.inputs
                      if leaf in by_output]
        if not candidates:
            break
        current = max(candidates,
                      key=lambda mapped: result.arrival.get(mapped.output,
                                                            0.0))
        path.append(current)
    path.reverse()
    return path


def gate_report(result: MappingResult) -> str:
    """Human-readable summary: per-gate histogram plus totals."""
    lines = ["%-8s %s" % ("gate", "count")]
    for name, count in sorted(result.histogram().items()):
        lines.append("%-8s %d" % (name, count))
    lines.append("area  = %.1f" % result.area)
    lines.append("delay = %.2f" % result.delay)
    return "\n".join(lines)
