"""Multi-level logic networks with SOP node functions and latches.

The reproduction's stand-in for the SIS [31] network data structure: a DAG
of single-output nodes, each carrying a sum-of-products local function over
its fanins, plus D-latches separating the combinational frame from the
sequential behaviour.  Latch outputs behave like primary inputs of the
combinational frame; latch inputs like primary outputs (the next-state
functions the Section 10.2 decomposition flow operates on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..sop.cover import Cover
from ..sop.cube import DASH, Cube


@dataclass
class Node:
    """One combinational node: ``name = cover(fanins)``."""

    name: str
    fanins: List[str]
    cover: Cover

    def __post_init__(self) -> None:
        if self.cover.width != len(self.fanins):
            raise ValueError("cover width %d != fanin count %d for %r"
                             % (self.cover.width, len(self.fanins),
                                self.name))

    def literal_count(self) -> int:
        return self.cover.literal_count()

    def is_constant(self) -> bool:
        return not self.fanins

    def is_buffer(self) -> bool:
        """True for ``f = a`` (single positive-literal cube)."""
        return (len(self.fanins) == 1 and self.cover.cube_count() == 1
                and self.cover.cubes[0].values == (1,))

    def is_inverter(self) -> bool:
        """True for ``f = a'``."""
        return (len(self.fanins) == 1 and self.cover.cube_count() == 1
                and self.cover.cubes[0].values == (0,))


@dataclass
class Latch:
    """A D-latch: ``output`` takes the value of ``input`` next cycle.

    ``trigger``/``clock`` carry the optional BLIF ``<type> <control>``
    pair (``fe``/``re``/``ah``/``al``/``as`` + a control signal) so
    parse/write round-trips preserve them; the combinational frame
    semantics ignore both.  ``init`` accepts the four BLIF values
    (0, 1, 2 = don't care, 3 = unknown).
    """

    input: str
    output: str
    init: int = 0
    trigger: Optional[str] = None
    clock: Optional[str] = None


class LogicNetwork:
    """A named multi-level network (combinational nodes + latches)."""

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.nodes: Dict[str, Node] = {}
        self.latches: List[Latch] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> None:
        self._check_fresh(name)
        self.inputs.append(name)

    def add_output(self, name: str) -> None:
        if name in self.outputs:
            raise ValueError("duplicate output %r" % name)
        self.outputs.append(name)

    def add_node(self, name: str, fanins: Sequence[str],
                 cover: Cover) -> Node:
        self._check_fresh(name)
        node = Node(name, list(fanins), cover)
        self.nodes[name] = node
        return node

    def add_latch(self, input_name: str, output_name: str,
                  init: int = 0, *, trigger: Optional[str] = None,
                  clock: Optional[str] = None) -> Latch:
        self._check_fresh(output_name)
        latch = Latch(input_name, output_name, init, trigger, clock)
        self.latches.append(latch)
        return latch

    def _check_fresh(self, name: str) -> None:
        if name in self.nodes or name in self.inputs or any(
                latch.output == name for latch in self.latches):
            raise ValueError("signal %r already defined" % name)

    def fresh_name(self, prefix: str = "n") -> str:
        """A signal name not yet used anywhere in the network."""
        index = len(self.nodes)
        while True:
            candidate = "%s%d" % (prefix, index)
            try:
                self._check_fresh(candidate)
                return candidate
            except ValueError:
                index += 1

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def combinational_inputs(self) -> List[str]:
        """Primary inputs plus latch outputs (the frame's leaves)."""
        return list(self.inputs) + [latch.output for latch in self.latches]

    def combinational_outputs(self) -> List[str]:
        """Primary outputs plus latch inputs (the frame's roots)."""
        return list(self.outputs) + [latch.input for latch in self.latches]

    def is_leaf(self, name: str) -> bool:
        return name in self.inputs or any(latch.output == name
                                          for latch in self.latches)

    def fanouts(self) -> Dict[str, List[str]]:
        """Map each signal to the node names that read it."""
        result: Dict[str, List[str]] = {}
        for node in self.nodes.values():
            for fanin in node.fanins:
                result.setdefault(fanin, []).append(node.name)
        return result

    def literal_count(self) -> int:
        """Total SOP literals (the SIS cost metric of Table 2's ALG)."""
        return sum(node.literal_count() for node in self.nodes.values())

    def node_count(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # Structure checks
    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Node names sorted leaves-to-roots; raises on cycles."""
        state: Dict[str, int] = {}
        order: List[str] = []

        def visit(name: str) -> None:
            if name not in self.nodes:
                if not self.is_leaf(name):
                    raise ValueError("undefined signal %r" % name)
                return
            mark = state.get(name, 0)
            if mark == 1:
                raise ValueError("combinational cycle through %r" % name)
            if mark == 2:
                return
            state[name] = 1
            for fanin in self.nodes[name].fanins:
                visit(fanin)
            state[name] = 2
            order.append(name)

        for name in self.combinational_outputs():
            visit(name)
        # Also visit nodes not reachable from outputs (dangling).
        for name in list(self.nodes):
            visit(name)
        return order

    def validate(self) -> None:
        """Raise on undefined signals, cycles, or missing outputs."""
        self.topological_order()
        for name in self.combinational_outputs():
            if name not in self.nodes and not self.is_leaf(name):
                raise ValueError("output %r is undefined" % name)

    # ------------------------------------------------------------------
    # Copy / surgery
    # ------------------------------------------------------------------
    def copy(self) -> "LogicNetwork":
        clone = LogicNetwork(self.name)
        clone.inputs = list(self.inputs)
        clone.outputs = list(self.outputs)
        clone.latches = [Latch(l.input, l.output, l.init, l.trigger,
                               l.clock)
                         for l in self.latches]
        for node in self.nodes.values():
            clone.nodes[node.name] = Node(node.name, list(node.fanins),
                                          node.cover.copy())
        return clone

    def remove_node(self, name: str) -> None:
        del self.nodes[name]

    def replace_fanin(self, node_name: str, old: str, new: str) -> None:
        """Re-wire one fanin of a node (cover columns are preserved)."""
        node = self.nodes[node_name]
        node.fanins = [new if fanin == old else fanin
                       for fanin in node.fanins]

    def sweep_dangling(self) -> int:
        """Drop nodes not reachable from any output; returns removal count."""
        reachable: Set[str] = set()
        stack = [name for name in self.combinational_outputs()]
        while stack:
            name = stack.pop()
            if name in reachable or name not in self.nodes:
                continue
            reachable.add(name)
            stack.extend(self.nodes[name].fanins)
        removed = [name for name in self.nodes if name not in reachable]
        for name in removed:
            del self.nodes[name]
        return len(removed)
