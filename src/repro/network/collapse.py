"""Collapsing a network into global BDDs over its combinational leaves.

Used by the Section 10.2 flow: each latch's next-state function is
collapsed to a BDD over primary inputs and latch outputs before building
the decomposition relation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..bdd.manager import FALSE, BddManager
from .netlist import LogicNetwork


class CollapsedNetwork:
    """Global BDDs for every signal of the combinational frame."""

    def __init__(self, network: LogicNetwork,
                 mgr: Optional[BddManager] = None) -> None:
        self.network = network
        leaves = network.combinational_inputs()
        if mgr is None:
            mgr = BddManager(leaves)
            self.leaf_vars = {name: index
                              for index, name in enumerate(leaves)}
        else:
            self.leaf_vars = {name: mgr.add_var(name) for name in leaves}
        self.mgr = mgr
        self.signal_nodes: Dict[str, int] = {
            name: mgr.var(var) for name, var in self.leaf_vars.items()}
        for name in network.topological_order():
            node = network.nodes[name]
            total = FALSE
            for cube in node.cover:
                literals = {}
                for position, value in enumerate(cube.values):
                    if value == 2:
                        continue
                    fanin_node = self.signal_nodes[node.fanins[position]]
                    literals[position] = (fanin_node, bool(value))
                term = None
                for position, (fanin_node, polarity) in sorted(
                        literals.items()):
                    lit = fanin_node if polarity else mgr.not_(fanin_node)
                    term = lit if term is None else mgr.and_(term, lit)
                if term is None:
                    from ..bdd.manager import TRUE
                    term = TRUE
                total = mgr.or_(total, term)
            self.signal_nodes[name] = total

    def node(self, name: str) -> int:
        """The global BDD of a signal."""
        return self.signal_nodes[name]

    def output_nodes(self) -> Dict[str, int]:
        return {name: self.signal_nodes[name]
                for name in self.network.outputs}

    def next_state_nodes(self) -> Dict[str, int]:
        """Latch-input functions keyed by latch *output* (state) name."""
        return {latch.output: self.signal_nodes[latch.input]
                for latch in self.network.latches}

    def support_names(self, name: str) -> List[str]:
        """Leaf names a signal depends on."""
        inverse = {var: leaf for leaf, var in self.leaf_vars.items()}
        return [inverse[var] for var in self.mgr.support(self.node(name))]
