"""A lib2-style standard-cell library for the technology mapper.

Each gate carries a NAND2/INV *pattern tree* (the classical subject-graph
matching representation from Rudell's thesis [25], which the paper's `map`
runs use), an area, and a pin-to-pin delay.  Areas and delays follow the
flavour of the SIS ``lib2.genlib`` library: inverters cheapest, NANDs
slightly cheaper than NORs, complex AOI/OAI gates giving area wins at some
delay.  Absolute values are not meaningful across technologies — Table 3
compares *ratios* between flows, which is what survives.

Pattern trees are nested tuples::

    ("inv", child) | ("nand", left, right) | "<leaf-name>"

A leaf name may repeat inside one pattern (leaf-DAG patterns, needed for
the 2:1 mux); the matcher then requires both occurrences to bind to the
same subject node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

Pattern = Union[str, Tuple]


@dataclass(frozen=True)
class Gate:
    """One library cell."""

    name: str
    area: float
    delay: float
    pattern: Pattern

    def leaf_names(self) -> List[str]:
        names: List[str] = []

        def walk(node: Pattern) -> None:
            if isinstance(node, str):
                if node not in names:
                    names.append(node)
            else:
                for child in node[1:]:
                    walk(child)

        walk(self.pattern)
        return names


def _nand(*children: Pattern) -> Pattern:
    if len(children) == 2:
        return ("nand", children[0], children[1])
    raise ValueError("nand pattern is binary")


def _inv(child: Pattern) -> Pattern:
    return ("inv", child)


def default_library() -> List[Gate]:
    """The lib2-flavoured cell set used by all experiments."""
    a, b, c, d = "a", "b", "c", "d"
    gates = [
        Gate("inv1", area=1.0, delay=1.0, pattern=_inv(a)),
        Gate("nand2", area=2.0, delay=1.0, pattern=_nand(a, b)),
        Gate("nor2", area=2.0, delay=1.2,
             pattern=_inv(_nand(_inv(a), _inv(b)))),
        Gate("and2", area=3.0, delay=1.4, pattern=_inv(_nand(a, b))),
        Gate("or2", area=3.0, delay=1.4, pattern=_nand(_inv(a), _inv(b))),
        Gate("nand3", area=3.0, delay=1.4,
             pattern=_nand(_inv(_nand(a, b)), c)),
        Gate("nand4", area=4.0, delay=1.8,
             pattern=_nand(_inv(_nand(a, b)), _inv(_nand(c, d)))),
        Gate("nor3", area=3.0, delay=1.6,
             pattern=_inv(_nand(_inv(_nand(_inv(a), _inv(b))), _inv(c)))),
        # ao21: a*b + c
        Gate("ao21", area=4.0, delay=1.6,
             pattern=_nand(_nand(a, b), _inv(c))),
        # aoi21: ~(a*b + c)
        Gate("aoi21", area=3.0, delay=1.4,
             pattern=_inv(_nand(_nand(a, b), _inv(c)))),
        # oai21: ~((a + b) * c)
        Gate("oai21", area=3.0, delay=1.4,
             pattern=_nand(_nand(_inv(a), _inv(b)), c)),
        # aoi22: ~(a*b + c*d)
        Gate("aoi22", area=4.0, delay=1.8,
             pattern=_inv(_nand(_nand(a, b), _nand(c, d)))),
        # mux21: a*s' + b*s  (leaf "s" repeats: leaf-DAG pattern)
        Gate("mux21", area=5.0, delay=1.8,
             pattern=_nand(_nand(a, _inv("s")), _nand(b, "s"))),
        Gate("buf", area=2.0, delay=1.2, pattern=_inv(_inv(a))),
    ]
    return gates


def library_by_name(gates: Sequence[Gate]) -> Dict[str, Gate]:
    return {gate.name: gate for gate in gates}
