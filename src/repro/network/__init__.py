"""Logic-network substrate: netlists, BLIF, algebraic script, mapping."""

from .algebraic import (algebraic_script, eliminate, extract_kernels,
                        simplify, sweep)
from .blif import BlifError, parse_blif, write_blif
from .collapse import CollapsedNetwork
from .delay import critical_path, gate_report
from .kernels import (algebraic_divide, is_cube_free, kernels,
                      largest_common_cube, literal_count, make_cube_free,
                      node_terms, terms_to_cover)
from .factor import (FactoredExpr, factor_node, factor_terms,
                     factored_literal_count)
from .library import Gate, default_library, library_by_name
from .mapped import gate_cover, mapping_to_network
from .mapping import (MappedGate, MappingResult, SubjectGraph,
                      build_subject_graph, map_network)
from .netlist import Latch, LogicNetwork, Node
from .simulate import (combinational_signature, evaluate,
                       exhaustive_signature, initial_state, simulate_step)

__all__ = [
    "BlifError",
    "CollapsedNetwork",
    "Gate",
    "Latch",
    "LogicNetwork",
    "MappedGate",
    "MappingResult",
    "Node",
    "SubjectGraph",
    "algebraic_divide",
    "algebraic_script",
    "build_subject_graph",
    "combinational_signature",
    "critical_path",
    "default_library",
    "eliminate",
    "evaluate",
    "exhaustive_signature",
    "extract_kernels",
    "FactoredExpr",
    "factor_node",
    "factor_terms",
    "factored_literal_count",
    "gate_cover",
    "gate_report",
    "mapping_to_network",
    "initial_state",
    "is_cube_free",
    "kernels",
    "largest_common_cube",
    "library_by_name",
    "literal_count",
    "make_cube_free",
    "map_network",
    "node_terms",
    "parse_blif",
    "simplify",
    "simulate_step",
    "simplify",
    "sweep",
    "terms_to_cover",
    "write_blif",
]
