"""Materialise a technology-mapping result as a gate-level LogicNetwork.

This closes the loop on the mapper: the emitted network instantiates one
node per chosen library gate (with the gate's Boolean function as its SOP
cover), preserves the original interface names, and can therefore be
simulated against the original network — the strongest correctness check
the mapper has.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..sop.cover import Cover
from ..sop.cube import Cube
from .library import Gate, Pattern
from .mapping import CONST0, CONST1, INV, LEAF, MappingResult, SubjectGraph, \
    build_subject_graph
from .netlist import LogicNetwork


def _pattern_value(pattern: Pattern, assignment: Dict[str, bool]) -> bool:
    """Evaluate a pattern tree under a leaf assignment."""
    if isinstance(pattern, str):
        return assignment[pattern]
    kind = pattern[0]
    if kind == INV:
        return not _pattern_value(pattern[1], assignment)
    if kind == "nand":
        return not (_pattern_value(pattern[1], assignment)
                    and _pattern_value(pattern[2], assignment))
    raise ValueError("unknown pattern kind %r" % kind)


def gate_cover(gate: Gate) -> Cover:
    """The gate's Boolean function as an SOP over its leaf order."""
    leaves = gate.leaf_names()
    cubes = []
    for value in range(1 << len(leaves)):
        assignment = {leaf: bool((value >> i) & 1)
                      for i, leaf in enumerate(leaves)}
        if _pattern_value(gate.pattern, assignment):
            cubes.append(Cube([(value >> i) & 1
                               for i in range(len(leaves))]))
    return Cover(len(leaves), cubes)


def mapping_to_network(network: LogicNetwork,
                       result: MappingResult) -> LogicNetwork:
    """Instantiate a mapping as a gate-level network.

    The returned network has the same primary inputs, outputs, and latches
    as ``network``; every internal node is one library-gate instance.
    ``result`` must come from :func:`repro.network.mapping.map_network`
    run on the *same* network (the subject graph is rebuilt here, which is
    deterministic).
    """
    graph = build_subject_graph(network)
    mapped = LogicNetwork(network.name + "_mapped")
    for name in network.inputs:
        mapped.add_input(name)
    for latch in network.latches:
        mapped.add_latch("__pending__", latch.output, latch.init)

    signal: Dict[int, str] = {}
    for node, kind in enumerate(graph.kinds):
        if kind == LEAF:
            signal[node] = graph.leaf_names[node]

    def ensure_const(node: int, value: bool) -> str:
        name = "const1" if value else "const0"
        if name not in mapped.nodes:
            cover = (Cover.universe(0) if value else Cover.empty(0))
            mapped.add_node(name, [], cover)
        return name

    by_output = {gate.output: gate for gate in result.gates}

    def emit(node: int) -> str:
        if node in signal:
            return signal[node]
        kind = graph.kinds[node]
        if kind == CONST0:
            signal[node] = ensure_const(node, False)
            return signal[node]
        if kind == CONST1:
            signal[node] = ensure_const(node, True)
            return signal[node]
        mapped_gate = by_output.get(node)
        if mapped_gate is None:
            raise ValueError("subject node %d has no mapped gate "
                             "(was the result produced for this network?)"
                             % node)
        fanins = [emit(leaf) for leaf in mapped_gate.inputs]
        name = "m%d" % node
        mapped.add_node(name, fanins, gate_cover(mapped_gate.gate))
        signal[node] = name
        return name

    # Interface: primary outputs keep their names through buffer nodes
    # when necessary; latch inputs are rewired to the mapped signals.
    for name in network.outputs:
        root_signal = emit(graph.roots[name])
        if root_signal == name:
            mapped.add_output(name)
            continue
        mapped.add_node(name, [root_signal], Cover.from_strings(1, ["1"]))
        mapped.add_output(name)
    for latch in mapped.latches:
        original = next(l for l in network.latches
                        if l.output == latch.output)
        latch.input = emit(graph.roots[original.input])
    mapped.validate()
    return mapped
