"""Network simulation (reference semantics for the transform tests)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .netlist import LogicNetwork


def evaluate(network: LogicNetwork,
             assignment: Dict[str, bool]) -> Dict[str, bool]:
    """Evaluate every signal of the combinational frame.

    ``assignment`` must bind every primary input and latch output.
    Returns a dict with the values of all signals (leaves included).
    """
    values = dict(assignment)
    for name in network.combinational_inputs():
        if name not in values:
            raise ValueError("missing value for leaf %r" % name)
    for name in network.topological_order():
        node = network.nodes[name]
        point = 0
        for position, fanin in enumerate(node.fanins):
            if values[fanin]:
                point |= 1 << position
        values[name] = node.cover.covers_point(point)
    return values


def simulate_step(network: LogicNetwork, inputs: Dict[str, bool],
                  state: Dict[str, bool]
                  ) -> Tuple[Dict[str, bool], Dict[str, bool]]:
    """One clock cycle: returns (primary outputs, next state).

    ``state`` maps latch *output* names to their current values.
    """
    assignment = dict(inputs)
    assignment.update(state)
    values = evaluate(network, assignment)
    outputs = {name: values[name] for name in network.outputs}
    next_state = {latch.output: values[latch.input]
                  for latch in network.latches}
    return outputs, next_state


def initial_state(network: LogicNetwork) -> Dict[str, bool]:
    """The latch init values as a state dict."""
    return {latch.output: bool(latch.init) for latch in network.latches}


def combinational_signature(network: LogicNetwork,
                            vectors: Sequence[Dict[str, bool]]
                            ) -> List[Tuple[bool, ...]]:
    """Frame outputs for a list of leaf assignments (equivalence checks)."""
    result = []
    roots = network.combinational_outputs()
    for vector in vectors:
        values = evaluate(network, vector)
        result.append(tuple(values[name] for name in roots))
    return result


def exhaustive_signature(network: LogicNetwork) -> List[Tuple[bool, ...]]:
    """Frame outputs over all leaf assignments (small frames only)."""
    leaves = network.combinational_inputs()
    if len(leaves) > 16:
        raise ValueError("exhaustive simulation limited to 16 leaves")
    vectors = []
    for value in range(1 << len(leaves)):
        vectors.append({leaf: bool((value >> i) & 1)
                        for i, leaf in enumerate(leaves)})
    return combinational_signature(network, vectors)
