"""The resynthesis pipeline: network -> relations -> solver -> network.

One pass over the network:

    enumerate cuts  ->  carve windows  ->  mine flexibility relations
        ->  stream them through Session.solve_many (shared memo)
        ->  realize minimized covers  ->  accept strictly-improving
            rewrites  ->  sweep

Every accepted rewrite is verified exhaustively on its window before it
sticks, and the final network is checked against the original at the
combinational outputs (exhaustively for narrow frames, by seeded
random-vector signature for wide ones).  Rejected or conflicting
candidates are counted, never silently dropped.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, List, Optional, Tuple

from ..api.session import Session
from ..core.relio import parse_relation, write_relation
from ..decompose.cutflex import cut_flexibility_relation, realize_functions
from ..network.blif import write_blif
from ..network.netlist import LogicNetwork
from ..network.simulate import combinational_signature, exhaustive_signature
from .report import ResynthReport
from .request import ResynthRequest, load_circuit
from .window import Window, enumerate_cuts, extract_window


class _Candidate:
    """One windowed cut awaiting its solved relation."""

    __slots__ = ("cut", "window", "pla", "old_literals")

    def __init__(self, cut: Tuple[str, ...], window: Window, pla: str,
                 old_literals: int) -> None:
        self.cut = cut
        self.window = window
        self.pla = pla
        self.old_literals = old_literals


def _mine_candidates(network: LogicNetwork, request: ResynthRequest,
                     counters: Dict[str, int]) -> List[_Candidate]:
    """Window every candidate cut and extract its flexibility relation."""
    fanouts = network.fanouts()
    cuts = enumerate_cuts(network, request.cut_policy, request.max_nodes)
    counters["candidates"] = len(cuts)
    candidates: List[_Candidate] = []
    for cut in cuts:
        window = extract_window(network, cut, max_leaves=request.window,
                                tfo_depth=request.tfo_depth,
                                fanouts=fanouts)
        if window is None:
            counters["windows_skipped"] += 1
            continue
        relation, _ = cut_flexibility_relation(window.network, cut)
        candidates.append(_Candidate(
            cut=cut, window=window, pla=write_relation(relation),
            old_literals=sum(
                network.nodes[name].cover.literal_count()
                for name in cut)))
    counters["relations_mined"] = len(candidates)
    return candidates


def _solved_functions(report: Any) -> Optional[Tuple[Any, List[int],
                                                     List[int]]]:
    """``(mgr, functions, input_vars)`` from a solve report, or None.

    Serial solves carry a live :class:`Solution`; pool and cached
    reports carry the PLA text instead, which re-parses into a private
    manager.  Either way the functions come back with the variable
    indices of the relation's input frame.
    """
    if report.solution is not None and report._inputs is not None:
        solution = report.solution
        return solution.mgr, list(solution.functions), \
            list(report._inputs)
    pla = report.solution_pla()
    if pla is None:
        return None
    parsed = parse_relation(pla)
    if not parsed.is_function():
        return None
    return parsed.mgr, parsed.function_vector(), list(parsed.inputs)


def _verify_window(window: Window, new_covers: Dict[str, Tuple[List[str],
                                                               Any]]
                   ) -> bool:
    """Exhaustively compare window roots before/after the rewrite."""
    rewritten = window.network.copy()
    for name, (fanins, cover) in new_covers.items():
        node = rewritten.nodes[name]
        node.fanins = list(fanins)
        node.cover = cover
    return exhaustive_signature(rewritten) == \
        exhaustive_signature(window.network)


def _apply_pass(network: LogicNetwork, candidates: List[_Candidate],
                reports_by_pla: Dict[str, Any],
                counters: Dict[str, int]) -> int:
    """Realize solved relations and install the improving rewrites.

    Returns the number of accepted rewrites.  ``network`` is mutated in
    place; every mutation is rolled back unless it passes the
    structural (acyclicity) and window-equivalence checks.
    """
    accepted = 0
    dirty: set = set()
    for candidate in candidates:
        report = reports_by_pla[candidate.pla]
        if not report.ok:
            counters["solver_failures"] += 1
            continue
        solved = _solved_functions(report)
        if solved is None:
            counters["unrealized"] += 1
            continue
        mgr, functions, input_vars = solved
        var_to_leaf = {var: leaf for var, leaf
                       in zip(input_vars, candidate.window.leaves)}
        realized = realize_functions(mgr, functions, var_to_leaf)
        new_literals = sum(cover.literal_count() for _, cover in realized)
        if new_literals >= candidate.old_literals:
            counters["rejected_cost"] += 1
            continue
        if dirty.intersection(candidate.window.nodes):
            # A previous rewrite changed a node inside this window, so
            # the mined flexibility is stale; retry next pass.
            counters["skipped_conflict"] += 1
            continue
        new_covers = {name: realized[position]
                      for position, name in enumerate(candidate.cut)}
        saved = {name: (network.nodes[name].fanins,
                        network.nodes[name].cover)
                 for name in candidate.cut}
        for name, (fanins, cover) in new_covers.items():
            node = network.nodes[name]
            node.fanins = list(fanins)
            node.cover = cover
        try:
            network.topological_order()
            structural_ok = True
        except ValueError:
            structural_ok = False
        if not structural_ok:
            # The new support reconverges through the cut: a cycle.
            for name, (fanins, cover) in saved.items():
                network.nodes[name].fanins = fanins
                network.nodes[name].cover = cover
            counters["rejected_cycle"] += 1
            continue
        if not _verify_window(candidate.window, new_covers):
            for name, (fanins, cover) in saved.items():
                network.nodes[name].fanins = fanins
                network.nodes[name].cover = cover
            counters["rejected_verify"] += 1
            continue
        dirty.update(candidate.window.nodes)
        dirty.update(candidate.cut)
        accepted += 1
    counters["accepted"] = accepted
    return accepted


def _verify_final(original: LogicNetwork, rewritten: LogicNetwork,
                  request: ResynthRequest
                  ) -> Tuple[Optional[bool], Optional[str], Optional[int]]:
    """Whole-network equivalence check at the combinational outputs."""
    if request.verify == "none":
        return None, None, None
    leaves = original.combinational_inputs()
    method = request.verify
    if method == "auto":
        method = ("exhaustive"
                  if len(leaves) <= request.verify_exhaustive_limit
                  else "signature")
    if method == "exhaustive":
        if len(leaves) > 16:
            method = "signature"  # exhaustive_signature's hard cap
        else:
            same = exhaustive_signature(original) == \
                exhaustive_signature(rewritten)
            return same, "exhaustive", 1 << len(leaves)
    rng = random.Random(request.seed)
    count = request.verify_vectors
    if len(leaves) < 30:
        count = min(count, 1 << len(leaves))
    vectors = [{leaf: bool(rng.getrandbits(1)) for leaf in leaves}
               for _ in range(count)]
    same = combinational_signature(original, vectors) == \
        combinational_signature(rewritten, vectors)
    return same, "signature", count


def resynthesize_network(network: LogicNetwork, request: ResynthRequest,
                         session: Optional[Session] = None
                         ) -> Tuple[LogicNetwork, ResynthReport]:
    """Run the full pipeline on a parsed network.

    Returns ``(rewritten_network, report)``.  The input network is not
    mutated.  A shared ``session`` carries its memo store and report
    cache across calls — the service layer passes its own.
    """
    started = time.perf_counter()
    if session is None:
        session = Session()
    original = network
    net = network.copy()
    pass_records: List[Dict[str, Any]] = []
    total_mined = 0
    total_solved = 0
    total_accepted = 0
    memo_hits = 0
    memo_misses = 0

    for index in range(request.passes):
        pass_started = time.perf_counter()
        counters: Dict[str, int] = {
            "candidates": 0, "windows_skipped": 0, "relations_mined": 0,
            "unique_relations": 0, "solver_failures": 0, "unrealized": 0,
            "rejected_cost": 0, "skipped_conflict": 0,
            "rejected_cycle": 0, "rejected_verify": 0, "accepted": 0,
        }
        candidates = _mine_candidates(net, request, counters)
        unique_plas: List[str] = []
        seen = set()
        for candidate in candidates:
            if candidate.pla not in seen:
                seen.add(candidate.pla)
                unique_plas.append(candidate.pla)
        counters["unique_relations"] = len(unique_plas)
        requests = [request.solver_request(
            {"kind": "pla", "text": pla},
            label="resynth-p%d-%d" % (index, position))
            for position, pla in enumerate(unique_plas)]
        reports = session.solve_many(requests,
                                     max_workers=request.workers,
                                     executor=request.executor)
        reports_by_pla = dict(zip(unique_plas, reports))
        for report in reports:
            if report.ok:
                memo_hits += int(report.stats.get("memo_hits", 0))
                memo_misses += int(report.stats.get("memo_misses", 0))
        accepted = _apply_pass(net, candidates, reports_by_pla, counters)
        swept = net.sweep_dangling()
        record = dict(counters)
        record["pass"] = index
        record["gates_swept"] = swept
        record["literals_end"] = net.literal_count()
        record["runtime_seconds"] = time.perf_counter() - pass_started
        pass_records.append(record)
        total_mined += counters["relations_mined"]
        total_solved += counters["unique_relations"]
        total_accepted += accepted
        if accepted == 0:
            break

    equivalent, method, vectors = _verify_final(original, net, request)
    total = memo_hits + memo_misses
    report = ResynthReport(
        ok=True,
        label=request.label,
        request=request.to_dict(),
        circuit=original.name,
        num_inputs=len(original.inputs),
        num_outputs=len(original.outputs),
        num_latches=len(original.latches),
        gates_before=original.node_count(),
        gates_after=net.node_count(),
        literals_before=original.literal_count(),
        literals_after=net.literal_count(),
        literal_savings=original.literal_count() - net.literal_count(),
        gate_savings=original.node_count() - net.node_count(),
        passes=pass_records,
        relations_mined=total_mined,
        relations_solved=total_solved,
        rewrites_accepted=total_accepted,
        memo_hits=memo_hits,
        memo_misses=memo_misses,
        memo_hit_rate=(memo_hits / total) if total else None,
        equivalent=equivalent,
        verify_method=method,
        verify_vectors=vectors,
        runtime_seconds=time.perf_counter() - started,
        blif=write_blif(net),
    )
    return net, report


def resynthesize(request: ResynthRequest,
                 session: Optional[Session] = None
                 ) -> ResynthReport:
    """Load the request's circuit, run the pipeline, return the report.

    Failures (bad specs, unreadable files, malformed BLIF) are captured
    as ``ok=False`` reports, mirroring :meth:`Session.solve_many`.
    """
    try:
        if request.circuit is None:
            raise ValueError("request has no circuit source")
        network = load_circuit(request.circuit)
        _, report = resynthesize_network(network, request,
                                         session=session)
        return report
    except Exception as exc:  # noqa: BLE001 — capture per request
        return ResynthReport.from_error(exc, request=request.to_dict(),
                                        label=request.label)
