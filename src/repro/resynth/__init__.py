"""End-to-end don't-care resynthesis of real circuits (paper Table 3).

The pipeline ingests a BLIF netlist, windows every candidate cut,
extracts per-cut don't-care flexibility as Boolean relations
(:mod:`repro.decompose.cutflex`), streams them through
:meth:`repro.api.Session.solve_many` with the shared memo store, and
rewrites the network with the strictly-improving minimized covers —
verifying every rewrite on its window and the final network at the
combinational outputs.
"""

from .pipeline import resynthesize, resynthesize_network
from .report import RESYNTH_SCHEMA_VERSION, ResynthReport
from .request import (ResynthRequest, load_circuit,
                      normalize_circuit_spec)
from .window import (CUT_POLICIES, MAX_WINDOW_LEAVES, Window,
                     enumerate_cuts, extract_window)

__all__ = [
    "CUT_POLICIES",
    "MAX_WINDOW_LEAVES",
    "RESYNTH_SCHEMA_VERSION",
    "ResynthReport",
    "ResynthRequest",
    "Window",
    "enumerate_cuts",
    "extract_window",
    "load_circuit",
    "normalize_circuit_spec",
    "resynthesize",
    "resynthesize_network",
]
