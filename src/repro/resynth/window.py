"""Windowed cut extraction for network resynthesis.

The full-network flexibility relation of :mod:`repro.decompose.cutflex`
collapses the whole combinational frame — exact, but exponential in the
number of primary inputs and useless as a batch workload (the pool
transport snapshots relations to PLA text, an enumeration of all
``2^inputs`` vertices).  This module builds the *windowed* variant used
by SIS-style don't-care optimisation: around each candidate cut, carve
out a small sub-network whose boundary inputs become free variables and
whose boundary outputs must be preserved.

Soundness: the window's roots are every window node that is observable
outside the window (a primary output, a latch input, or a signal read by
a node outside the window).  Preserving those root functions for *every*
assignment of the window leaves preserves them in particular for the
reachable assignments, so any rewrite drawn from the window's
flexibility relation leaves the global combinational behaviour
untouched.  The window sees only a subset of the true flexibility
(no satisfiability don't-cares from the leaves' cones), which costs
optimisation power, never correctness.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..network.netlist import LogicNetwork

#: Widest window the pipeline will build: the per-rewrite verification
#: simulates the window exhaustively, and the pool transport enumerates
#: 2^leaves PLA rows, so both need a hard ceiling.
MAX_WINDOW_LEAVES = 16

CUT_POLICIES = ("nodes", "reconvergent")


@dataclass
class Window:
    """A standalone combinational sub-network around one cut."""

    #: The cut being resynthesised (internal nodes of the host network).
    cut: Tuple[str, ...]
    #: Window node set: the cut plus its in-window transitive fanout.
    nodes: Tuple[str, ...]
    #: Boundary input signals, in deterministic first-seen order; these
    #: are the window network's primary inputs (= relation inputs).
    leaves: Tuple[str, ...]
    #: Window nodes observable outside the window; these are the window
    #: network's primary outputs, whose functions a rewrite preserves.
    roots: Tuple[str, ...]
    #: The carved-out sub-network (inputs = leaves, outputs = roots).
    network: LogicNetwork


def _grow_tfo(network: LogicNetwork, seeds: Sequence[str], depth: int,
              fanouts: Dict[str, List[str]]) -> List[str]:
    """Seed nodes plus their transitive fanout up to ``depth`` levels."""
    member = set(seeds)
    frontier = list(seeds)
    for _ in range(depth):
        grown: List[str] = []
        for name in frontier:
            for reader in fanouts.get(name, ()):
                if reader in network.nodes and reader not in member:
                    member.add(reader)
                    grown.append(reader)
        if not grown:
            break
        frontier = grown
    order = [name for name in network.topological_order()
             if name in member]
    return order


def extract_window(network: LogicNetwork, cut: Sequence[str],
                   max_leaves: int = 8, tfo_depth: int = 1,
                   fanouts: Optional[Dict[str, List[str]]] = None
                   ) -> Optional[Window]:
    """Carve the window around ``cut``, or ``None`` if none fits.

    The window is the cut plus its transitive fanout up to ``tfo_depth``
    levels; when the resulting boundary has more than ``max_leaves``
    input signals the depth is backed off one level at a time.  At depth
    0 the window is the cut itself and the leaves are the cut's fanins —
    if even that exceeds the cap, the cut is not windowable.
    """
    if max_leaves > MAX_WINDOW_LEAVES:
        raise ValueError("max_leaves is capped at %d" % MAX_WINDOW_LEAVES)
    for name in cut:
        if name not in network.nodes:
            return None  # leaves and unknown signals are not windowable
    if fanouts is None:
        fanouts = network.fanouts()
    output_set = set(network.combinational_outputs())
    for depth in range(max(tfo_depth, 0), -1, -1):
        member_order = _grow_tfo(network, cut, depth, fanouts)
        member = set(member_order)
        leaves: List[str] = []
        seen = set()
        for name in member_order:
            for fanin in network.nodes[name].fanins:
                if fanin not in member and fanin not in seen:
                    seen.add(fanin)
                    leaves.append(fanin)
        if len(leaves) > max_leaves:
            continue
        roots = [name for name in member_order
                 if name in output_set
                 or any(reader not in member
                        for reader in fanouts.get(name, ()))]
        sub = LogicNetwork("win_%s" % cut[0])
        for leaf in leaves:
            sub.add_input(leaf)
        for name in member_order:
            node = network.nodes[name]
            sub.add_node(name, list(node.fanins), node.cover.copy())
        for root in roots:
            sub.add_output(root)
        return Window(cut=tuple(cut), nodes=tuple(member_order),
                      leaves=tuple(leaves), roots=tuple(roots),
                      network=sub)
    return None


def enumerate_cuts(network: LogicNetwork, policy: str = "nodes",
                   max_cuts: Optional[int] = None
                   ) -> List[Tuple[str, ...]]:
    """Candidate cuts under the given enumeration policy.

    ``"nodes"``
        Every internal node as a singleton cut, in topological order —
        the workhorse policy; one relation per gate.
    ``"reconvergent"``
        The paper's §1 shape: for every node with two or more internal
        fanins, the first two fanins as a joint cut (deduplicated).
        Joint cuts capture flexibility the per-node MISF cannot express.
    """
    if policy not in CUT_POLICIES:
        raise ValueError("unknown cut policy %r (choose from %s)"
                         % (policy, ", ".join(CUT_POLICIES)))
    cuts: List[Tuple[str, ...]] = []
    if policy == "nodes":
        for name in network.topological_order():
            if name in network.nodes:
                cuts.append((name,))
    else:
        seen = set()
        for name in network.topological_order():
            if name not in network.nodes:
                continue
            internal = [fanin for fanin in network.nodes[name].fanins
                        if fanin in network.nodes]
            if len(internal) >= 2:
                pair = tuple(internal[:2])
                if pair not in seen and pair[0] != pair[1]:
                    seen.add(pair)
                    cuts.append(pair)
    if max_cuts is not None:
        cuts = cuts[:max_cuts]
    return cuts
