"""Structured resynthesis results (data-only, JSON round-trip)."""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

#: Bumped when the report schema changes shape.
RESYNTH_SCHEMA_VERSION = 1


@dataclass
class ResynthReport:
    """Outcome of one resynthesis run (success or captured failure)."""

    ok: bool
    label: Optional[str] = None
    error: Optional[str] = None
    request: Optional[Dict[str, Any]] = None
    #: Circuit identity (model name of the parsed netlist).
    circuit: Optional[str] = None
    num_inputs: Optional[int] = None
    num_outputs: Optional[int] = None
    num_latches: Optional[int] = None
    gates_before: Optional[int] = None
    gates_after: Optional[int] = None
    literals_before: Optional[int] = None
    literals_after: Optional[int] = None
    literal_savings: Optional[int] = None
    gate_savings: Optional[int] = None
    #: One record per optimisation pass: candidates, windows, accept /
    #: reject counters, literals at pass end, wall clock.
    passes: List[Dict[str, Any]] = field(default_factory=list)
    #: Totals across passes.
    relations_mined: int = 0
    relations_solved: int = 0
    rewrites_accepted: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    memo_hit_rate: Optional[float] = None
    #: Final whole-network equivalence verdict; ``None`` when the
    #: request disabled the check (``verify="none"``).
    equivalent: Optional[bool] = None
    verify_method: Optional[str] = None
    verify_vectors: Optional[int] = None
    runtime_seconds: float = 0.0
    #: The rewritten netlist, serialised back to BLIF.
    blif: Optional[str] = None
    cached: bool = False
    schema_version: int = RESYNTH_SCHEMA_VERSION

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResynthReport":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError("unknown ResynthReport fields: %s"
                             % ", ".join(sorted(unknown)))
        return cls(**dict(data))

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ResynthReport":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_error(cls, exc: BaseException,
                   request: Optional[Mapping[str, Any]] = None,
                   label: Optional[str] = None) -> "ResynthReport":
        return cls(ok=False, label=label,
                   error="%s: %s" % (type(exc).__name__, exc),
                   request=dict(request) if request is not None else None)

    def copy(self, **changes: Any) -> "ResynthReport":
        """A copy sharing no mutable containers with the original."""
        fresh: Dict[str, Any] = dict(
            request=dict(self.request) if self.request is not None
            else None,
            passes=[dict(record) for record in self.passes])
        fresh.update(changes)
        return dataclasses.replace(self, **fresh)

    # -- convenience ---------------------------------------------------
    def summary(self) -> str:
        """One status line, for CLI / bench progress output."""
        name = self.label or self.circuit or "<unnamed>"
        if not self.ok:
            return "%s: FAILED (%s)" % (name, self.error)
        rate = ("%.0f%%" % (100.0 * self.memo_hit_rate)
                if self.memo_hit_rate is not None else "n/a")
        verdict = {True: "equivalent", False: "NOT EQUIVALENT",
                   None: "unverified"}[self.equivalent]
        return ("%s: literals %d -> %d (saved %d), %d/%d rewrites, "
                "memo %s, %s, %.3fs%s"
                % (name, self.literals_before or 0,
                   self.literals_after or 0, self.literal_savings or 0,
                   self.rewrites_accepted, self.relations_mined, rate,
                   verdict, self.runtime_seconds,
                   " [cached]" if self.cached else ""))
