"""Declarative description of one resynthesis run.

Mirrors the :class:`repro.api.SolveRequest` idiom: a frozen dataclass
with eager validation, JSON round-trip, and a canonical options key the
service layer folds into its cache fingerprint.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from ..api.registry import cost_registry, minimizer_registry
from ..api.request import SolveRequest
from ..benchdata.circuits import circuit_by_name
from ..network.blif import parse_blif
from ..network.netlist import LogicNetwork
from .window import CUT_POLICIES, MAX_WINDOW_LEAVES

EXECUTORS = ("serial", "thread", "process")
VERIFY_MODES = ("auto", "exhaustive", "signature", "none")


def normalize_circuit_spec(spec: Any) -> Dict[str, Any]:
    """Canonicalise the circuit source into a tagged dict.

    Accepted shorthands: a bare string is a bundled benchdata circuit
    name; tagged dicts are ``{"kind": "bench", "name": ...}``,
    ``{"kind": "blif", "text": ...}`` and ``{"kind": "file",
    "path": ...}``.
    """
    if isinstance(spec, str):
        return {"kind": "bench", "name": spec}
    if isinstance(spec, Mapping):
        kind = spec.get("kind")
        if kind == "bench":
            if not isinstance(spec.get("name"), str):
                raise ValueError("bench circuit spec needs a 'name'")
            return {"kind": "bench", "name": spec["name"]}
        if kind == "blif":
            if not isinstance(spec.get("text"), str):
                raise ValueError("blif circuit spec needs 'text'")
            return {"kind": "blif", "text": spec["text"]}
        if kind == "file":
            if not isinstance(spec.get("path"), str):
                raise ValueError("file circuit spec needs a 'path'")
            return {"kind": "file", "path": spec["path"]}
        raise ValueError("unknown circuit spec kind %r" % kind)
    raise ValueError("circuit spec must be a name or a tagged dict, "
                     "got %r" % type(spec).__name__)


def load_circuit(spec: Any) -> LogicNetwork:
    """Materialise the circuit named by a (normalised) spec."""
    spec = normalize_circuit_spec(spec)
    if spec["kind"] == "bench":
        return circuit_by_name(spec["name"]).build()
    if spec["kind"] == "blif":
        return parse_blif(spec["text"])
    with open(spec["path"], "r", encoding="utf-8") as handle:
        return parse_blif(handle.read())


@dataclass(frozen=True)
class ResynthRequest:
    """One end-to-end resynthesis run, described declaratively."""

    circuit: Any = None
    #: Optimisation passes over the network; the pipeline stops early
    #: when a pass accepts no rewrite.
    passes: int = 2
    #: Maximum window boundary inputs (= relation inputs) per cut.
    window: int = 8
    #: Transitive-fanout levels included in each window (backed off
    #: per cut until the boundary fits ``window``).
    tfo_depth: int = 1
    #: Cut enumeration policy (:data:`repro.resynth.window.CUT_POLICIES`).
    cut_policy: str = "nodes"
    #: Cap on candidate cuts per pass; ``None`` = all of them.
    max_nodes: Optional[int] = None
    # -- solver knobs, passed through to each SolveRequest -------------
    cost: str = "literals"
    minimizer: str = "isop"
    strategy: Optional[str] = None
    max_explored: Optional[int] = 10
    memo: Optional[bool] = None
    decompose: Optional[bool] = None
    backend: Optional[str] = None
    table_width: Optional[int] = None
    # -- batch execution -----------------------------------------------
    executor: str = "serial"
    workers: Optional[int] = None
    # -- verification ---------------------------------------------------
    #: ``auto`` = exhaustive when the frame has at most
    #: ``verify_exhaustive_limit`` leaves, random-vector signature
    #: otherwise; ``none`` skips the final whole-network check (the
    #: per-rewrite window checks always run).
    verify: str = "auto"
    verify_exhaustive_limit: int = 12
    verify_vectors: int = 256
    #: Seed for the signature vectors (and any other tie-breaking).
    seed: int = 0
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.circuit is not None:
            object.__setattr__(self, "circuit",
                               normalize_circuit_spec(self.circuit))
        if self.passes < 1:
            raise ValueError("passes must be >= 1")
        if not 1 <= self.window <= MAX_WINDOW_LEAVES:
            raise ValueError("window must be in 1..%d"
                             % MAX_WINDOW_LEAVES)
        if self.tfo_depth < 0:
            raise ValueError("tfo_depth must be >= 0")
        if self.cut_policy not in CUT_POLICIES:
            raise ValueError("unknown cut policy %r" % self.cut_policy)
        if self.max_nodes is not None and self.max_nodes < 1:
            raise ValueError("max_nodes must be >= 1")
        if self.executor not in EXECUTORS:
            raise ValueError("executor must be one of %s"
                             % ", ".join(EXECUTORS))
        if self.verify not in VERIFY_MODES:
            raise ValueError("verify must be one of %s"
                             % ", ".join(VERIFY_MODES))
        if not 0 <= self.verify_exhaustive_limit <= 16:
            raise ValueError("verify_exhaustive_limit must be in 0..16")
        if self.verify_vectors < 1:
            raise ValueError("verify_vectors must be >= 1")
        if self.cost not in cost_registry:
            cost_registry.get(self.cost)  # raises with the valid names
        if self.minimizer not in minimizer_registry:
            minimizer_registry.get(self.minimizer)
        # Validate the solver knobs eagerly via a throwaway request.
        self.solver_request({"kind": "pla", "text": ".i 1\n.o 1\n"
                                                   "0 0\n1 1\n.e\n"})

    # -- conversion ----------------------------------------------------
    def solver_request(self, relation_spec: Any,
                       label: Optional[str] = None) -> SolveRequest:
        """The per-cut :class:`SolveRequest` for one mined relation."""
        return SolveRequest(
            relation=relation_spec,
            cost=self.cost,
            minimizer=self.minimizer,
            strategy=self.strategy,
            max_explored=self.max_explored,
            memo=self.memo,
            decompose=self.decompose,
            backend=self.backend,
            table_width=self.table_width,
            label=label)

    def options_key(self) -> Tuple[Any, ...]:
        """Canonical tuple of every result-affecting knob.

        The service folds this into the cache fingerprint, so — like
        ``Session._options_key`` — every field that can change the
        rewritten network or the report MUST appear here.  The schema
        guard test enumerates the dataclass fields against this tuple.
        """
        return (
            "resynth-v1",
            self.passes,
            self.window,
            self.tfo_depth,
            self.cut_policy,
            self.max_nodes,
            self.cost,
            self.minimizer,
            self.strategy,
            self.max_explored,
            self.memo,
            self.decompose,
            self.backend,
            self.table_width,
            self.verify,
            self.verify_exhaustive_limit,
            self.verify_vectors,
            self.seed,
        )

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResynthRequest":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError("unknown ResynthRequest fields: %s"
                             % ", ".join(sorted(unknown)))
        return cls(**dict(data))

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ResynthRequest":
        return cls.from_dict(json.loads(text))
