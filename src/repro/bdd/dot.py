"""Graphviz DOT export for BDDs (debugging / documentation aid)."""

from __future__ import annotations

from typing import List, Sequence

from .manager import FALSE, TRUE, BddManager


def to_dot(mgr: BddManager, roots: Sequence[int],
           labels: Sequence[str] = ()) -> str:
    """Render one or more BDD roots as a Graphviz digraph.

    Dashed edges are 0-branches, solid edges 1-branches, following the
    conventional BDD drawing style.
    """
    lines: List[str] = ["digraph bdd {", '  rankdir=TB;']
    lines.append('  node0 [label="0", shape=box];')
    lines.append('  node1 [label="1", shape=box];')
    seen = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node <= TRUE or node in seen:
            continue
        seen.add(node)
        var = mgr.level(node)
        lines.append('  node%d [label="%s", shape=circle];'
                     % (node, mgr.var_name(var)))
        lines.append('  node%d -> node%d [style=dashed];'
                     % (node, mgr.low(node)))
        lines.append('  node%d -> node%d;' % (node, mgr.high(node)))
        stack.append(mgr.low(node))
        stack.append(mgr.high(node))
    for index, root in enumerate(roots):
        label = labels[index] if index < len(labels) else "f%d" % index
        lines.append('  root%d [label="%s", shape=plaintext];'
                     % (index, label))
        lines.append('  root%d -> node%d;' % (index, root))
    lines.append("}")
    return "\n".join(lines)
