"""Path- and cube-oriented BDD traversals.

The BREL split heuristic (paper Section 7.4) extracts *the shortest path in
the BDD* of the conflict set: the path with the fewest literals, i.e. the
largest cube of adjacent conflicting vertices.  This module provides that
extraction plus cube/minterm enumeration used by covers, printing, and the
test oracles.

All walks are iterative (explicit work stacks): like the manager itself,
nothing here depends on the interpreter recursion limit, so arbitrarily
deep BDDs are traversable.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .manager import FALSE, TRUE, BddManager

#: Cost placeholder for paths that cannot reach TRUE.
_INFINITY = float("inf")


def shortest_path_cube(mgr: BddManager, f: int) -> Optional[Dict[int, bool]]:
    """Return the cube (var -> polarity) of the shortest root-to-TRUE path.

    The *length* of a path is the number of variables it constrains, so the
    returned cube is a largest cube contained in ``f``.  Returns ``None``
    when ``f`` is unsatisfiable and the empty dict when ``f`` is TRUE.

    Ties are broken deterministically: the 0-branch is preferred.
    """
    if f == FALSE:
        return None
    # Post-order sweep: memo[node] = (fewest literals to TRUE, branch).
    memo: Dict[int, Tuple[float, Optional[bool]]] = {
        TRUE: (0, None), FALSE: (_INFINITY, None)}
    stack = [f]
    while stack:
        node = stack[-1]
        if node in memo:
            stack.pop()
            continue
        lo, hi = mgr.low(node), mgr.high(node)
        ready = True
        if lo not in memo:
            stack.append(lo)
            ready = False
        if hi not in memo:
            stack.append(hi)
            ready = False
        if not ready:
            continue
        stack.pop()
        low_cost = memo[lo][0]
        high_cost = memo[hi][0]
        if low_cost <= high_cost:
            memo[node] = (1 + low_cost, False)
        else:
            memo[node] = (1 + high_cost, True)

    cube: Dict[int, bool] = {}
    node = f
    while node > TRUE:
        branch = memo[node][1]
        cube[mgr.level(node)] = bool(branch)
        node = mgr.high(node) if branch else mgr.low(node)
    return cube


# Op-codes for the iter_cubes walk below.
_VISIT = 0
_SET = 1
_UNSET = 2


def iter_cubes(mgr: BddManager, f: int) -> Iterator[Dict[int, bool]]:
    """Yield every root-to-TRUE path of ``f`` as a cube (var -> polarity).

    The cubes are disjoint (they follow distinct BDD paths) and their union
    is exactly ``f``.  Variables skipped along a path do not appear in the
    cube: they are don't-cares.
    """
    # One shared path dict mutated by SET/UNSET ops interleaved with node
    # visits; stack memory stays linear in the BDD depth.
    path: Dict[int, bool] = {}
    stack: List[Tuple[int, int, bool]] = [(_VISIT, f, False)]
    while stack:
        op, arg, polarity = stack.pop()
        if op == _SET:
            path[arg] = polarity
            continue
        if op == _UNSET:
            del path[arg]
            continue
        if arg == FALSE:
            continue
        if arg == TRUE:
            yield dict(path)
            continue
        var = mgr.level(arg)
        # Reverse execution order: low branch first, then high, then tidy.
        stack.append((_UNSET, var, False))
        stack.append((_VISIT, mgr.high(arg), False))
        stack.append((_SET, var, True))
        stack.append((_VISIT, mgr.low(arg), False))
        stack.append((_SET, var, False))


def pick_minterm(mgr: BddManager, f: int,
                 variables: Sequence[int]) -> Optional[Dict[int, bool]]:
    """Return one satisfying full assignment over ``variables``, or None.

    Unconstrained variables are set to ``False``; the choice is
    deterministic (low branch explored first).
    """
    cube = shortest_path_cube(mgr, f)
    if cube is None:
        return None
    return {var: cube.get(var, False) for var in variables}


def cube_to_node(mgr: BddManager, cube: Dict[int, bool]) -> int:
    """Build the BDD of a cube given as a var -> polarity mapping."""
    return mgr.cube(cube)


def count_paths(mgr: BddManager, f: int) -> int:
    """Number of distinct root-to-TRUE paths (cubes in the path cover)."""
    memo: Dict[int, int] = {TRUE: 1, FALSE: 0}
    stack = [f]
    while stack:
        node = stack[-1]
        if node in memo:
            stack.pop()
            continue
        lo, hi = mgr.low(node), mgr.high(node)
        ready = True
        if lo not in memo:
            stack.append(lo)
            ready = False
        if hi not in memo:
            stack.append(hi)
            ready = False
        if ready:
            stack.pop()
            memo[node] = memo[lo] + memo[hi]
    return memo[f]


def truth_table(mgr: BddManager, f: int, variables: Sequence[int]) -> List[bool]:
    """Explicit truth table of ``f`` over ``variables``.

    Entry ``i`` holds ``f`` evaluated with bit ``j`` of ``i`` assigned to
    ``variables[j]``.  Only usable for small variable counts; intended for
    tests and pretty-printing.
    """
    n = len(variables)
    table = []
    for value in range(1 << n):
        assignment = {var: bool((value >> j) & 1)
                      for j, var in enumerate(variables)}
        table.append(mgr.eval(f, assignment))
    return table
