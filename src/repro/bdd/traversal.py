"""Path- and cube-oriented BDD traversals.

The BREL split heuristic (paper Section 7.4) extracts *the shortest path in
the BDD* of the conflict set: the path with the fewest literals, i.e. the
largest cube of adjacent conflicting vertices.  This module provides that
extraction plus cube/minterm enumeration used by covers, printing, and the
test oracles.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .manager import FALSE, TRUE, BddManager

#: Cost placeholder for paths that cannot reach TRUE.
_INFINITY = float("inf")


def shortest_path_cube(mgr: BddManager, f: int) -> Optional[Dict[int, bool]]:
    """Return the cube (var -> polarity) of the shortest root-to-TRUE path.

    The *length* of a path is the number of variables it constrains, so the
    returned cube is a largest cube contained in ``f``.  Returns ``None``
    when ``f`` is unsatisfiable and the empty dict when ``f`` is TRUE.

    Ties are broken deterministically: the 0-branch is preferred.
    """
    if f == FALSE:
        return None
    memo: Dict[int, Tuple[float, Optional[bool]]] = {}

    def cost(node: int) -> float:
        """Fewest literals needed from ``node`` to reach TRUE."""
        if node == TRUE:
            return 0
        if node == FALSE:
            return _INFINITY
        hit = memo.get(node)
        if hit is not None:
            return hit[0]
        low_cost = cost(mgr.low(node))
        high_cost = cost(mgr.high(node))
        if low_cost <= high_cost:
            entry = (1 + low_cost, False)
        else:
            entry = (1 + high_cost, True)
        memo[node] = entry
        return entry[0]

    cost(f)
    cube: Dict[int, bool] = {}
    node = f
    while node > TRUE:
        branch = memo[node][1]
        cube[mgr.level(node)] = bool(branch)
        node = mgr.high(node) if branch else mgr.low(node)
    return cube


def iter_cubes(mgr: BddManager, f: int) -> Iterator[Dict[int, bool]]:
    """Yield every root-to-TRUE path of ``f`` as a cube (var -> polarity).

    The cubes are disjoint (they follow distinct BDD paths) and their union
    is exactly ``f``.  Variables skipped along a path do not appear in the
    cube: they are don't-cares.
    """
    path: Dict[int, bool] = {}

    def walk(node: int) -> Iterator[Dict[int, bool]]:
        if node == FALSE:
            return
        if node == TRUE:
            yield dict(path)
            return
        var = mgr.level(node)
        path[var] = False
        yield from walk(mgr.low(node))
        path[var] = True
        yield from walk(mgr.high(node))
        del path[var]

    yield from walk(f)


def pick_minterm(mgr: BddManager, f: int,
                 variables: Sequence[int]) -> Optional[Dict[int, bool]]:
    """Return one satisfying full assignment over ``variables``, or None.

    Unconstrained variables are set to ``False``; the choice is
    deterministic (low branch explored first).
    """
    cube = shortest_path_cube(mgr, f)
    if cube is None:
        return None
    return {var: cube.get(var, False) for var in variables}


def cube_to_node(mgr: BddManager, cube: Dict[int, bool]) -> int:
    """Build the BDD of a cube given as a var -> polarity mapping."""
    return mgr.cube(cube)


def count_paths(mgr: BddManager, f: int) -> int:
    """Number of distinct root-to-TRUE paths (cubes in the path cover)."""
    memo: Dict[int, int] = {TRUE: 1, FALSE: 0}

    def walk(node: int) -> int:
        hit = memo.get(node)
        if hit is not None:
            return hit
        result = walk(mgr.low(node)) + walk(mgr.high(node))
        memo[node] = result
        return result

    return walk(f)


def truth_table(mgr: BddManager, f: int, variables: Sequence[int]) -> List[bool]:
    """Explicit truth table of ``f`` over ``variables``.

    Entry ``i`` holds ``f`` evaluated with bit ``j`` of ``i`` assigned to
    ``variables[j]``.  Only usable for small variable counts; intended for
    tests and pretty-printing.
    """
    n = len(variables)
    table = []
    for value in range(1 << n):
        assignment = {var: bool((value >> j) & 1)
                      for j, var in enumerate(variables)}
        table.append(mgr.eval(f, assignment))
    return table
