"""Operator-overloaded handle over a BDD node.

:class:`Bdd` pairs a node index with its owning :class:`BddManager` so that
user code can write ``f & ~g | h`` instead of manager calls.  Handles are
immutable and hashable; two handles compare equal iff they denote the same
function in the same manager (hash-consing makes this an integer check).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from . import traversal
from .manager import FALSE, TRUE, BddManager


class Bdd:
    """An immutable handle on a Boolean function stored in a manager."""

    __slots__ = ("manager", "node")

    def __init__(self, manager: BddManager, node: int) -> None:
        self.manager = manager
        self.node = node

    # -- construction -------------------------------------------------
    @staticmethod
    def true(manager: BddManager) -> "Bdd":
        """The constant TRUE function."""
        return Bdd(manager, TRUE)

    @staticmethod
    def false(manager: BddManager) -> "Bdd":
        """The constant FALSE function."""
        return Bdd(manager, FALSE)

    @staticmethod
    def variable(manager: BddManager, index: int) -> "Bdd":
        """The positive literal of variable ``index``."""
        return Bdd(manager, manager.var(index))

    # -- identity ------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bdd):
            return NotImplemented
        return self.manager is other.manager and self.node == other.node

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def __bool__(self) -> bool:
        raise TypeError(
            "Bdd truthiness is ambiguous; use .is_true / .is_false or "
            "compare against another Bdd")

    def __repr__(self) -> str:
        if self.node == TRUE:
            return "Bdd(TRUE)"
        if self.node == FALSE:
            return "Bdd(FALSE)"
        return "Bdd(node=%d, size=%d)" % (self.node, self.size())

    # -- predicates ----------------------------------------------------
    @property
    def is_true(self) -> bool:
        """True iff this is the constant TRUE function."""
        return self.node == TRUE

    @property
    def is_false(self) -> bool:
        """True iff this is the constant FALSE function."""
        return self.node == FALSE

    @property
    def is_constant(self) -> bool:
        """True for either constant function."""
        return self.node <= TRUE

    # -- connectives ----------------------------------------------------
    def _wrap(self, node: int) -> "Bdd":
        return Bdd(self.manager, node)

    def _check(self, other: "Bdd") -> None:
        if self.manager is not other.manager:
            raise ValueError("cannot combine Bdds from different managers")

    def __and__(self, other: "Bdd") -> "Bdd":
        self._check(other)
        return self._wrap(self.manager.and_(self.node, other.node))

    def __or__(self, other: "Bdd") -> "Bdd":
        self._check(other)
        return self._wrap(self.manager.or_(self.node, other.node))

    def __xor__(self, other: "Bdd") -> "Bdd":
        self._check(other)
        return self._wrap(self.manager.xor_(self.node, other.node))

    def __invert__(self) -> "Bdd":
        return self._wrap(self.manager.not_(self.node))

    def __sub__(self, other: "Bdd") -> "Bdd":
        """Set difference: ``self & ~other``."""
        self._check(other)
        return self._wrap(self.manager.diff(self.node, other.node))

    def iff(self, other: "Bdd") -> "Bdd":
        """Equivalence (XNOR)."""
        self._check(other)
        return self._wrap(self.manager.xnor_(self.node, other.node))

    def ite(self, then_f: "Bdd", else_f: "Bdd") -> "Bdd":
        """``self ? then_f : else_f``."""
        self._check(then_f)
        self._check(else_f)
        return self._wrap(self.manager.ite(self.node, then_f.node,
                                           else_f.node))

    def implies(self, other: "Bdd") -> bool:
        """Decide containment ``self <= other``."""
        self._check(other)
        return self.manager.implies(self.node, other.node)

    def __le__(self, other: "Bdd") -> bool:
        return self.implies(other)

    def __ge__(self, other: "Bdd") -> bool:
        return other.implies(self)

    def __lt__(self, other: "Bdd") -> bool:
        return self.implies(other) and self != other

    def __gt__(self, other: "Bdd") -> bool:
        return other.implies(self) and self != other

    # -- cofactors / quantifiers -----------------------------------------
    def cofactor(self, var: int, value: bool) -> "Bdd":
        """Restrict one variable to a constant."""
        return self._wrap(self.manager.cofactor(self.node, var, value))

    def restrict_cube(self, assignment: Dict[int, bool]) -> "Bdd":
        """Restrict several variables to constants."""
        return self._wrap(self.manager.restrict_cube(self.node, assignment))

    def exists(self, variables: Sequence[int]) -> "Bdd":
        """Existential quantification."""
        return self._wrap(self.manager.exists(self.node, variables))

    def forall(self, variables: Sequence[int]) -> "Bdd":
        """Universal quantification."""
        return self._wrap(self.manager.forall(self.node, variables))

    def compose(self, var: int, g: "Bdd") -> "Bdd":
        """Substitute ``g`` for variable ``var``."""
        self._check(g)
        return self._wrap(self.manager.compose(self.node, var, g.node))

    def vector_compose(self, substitution: Dict[int, "Bdd"]) -> "Bdd":
        """Simultaneously substitute several variables."""
        raw = {var: g.node for var, g in substitution.items()}
        return self._wrap(self.manager.vector_compose(self.node, raw))

    def permute(self, mapping: Dict[int, int]) -> "Bdd":
        """Rename variables."""
        return self._wrap(self.manager.permute(self.node, mapping))

    # -- queries ---------------------------------------------------------
    def support(self) -> Tuple[int, ...]:
        """Variables this function depends on."""
        return self.manager.support(self.node)

    def size(self) -> int:
        """Internal DAG node count (the paper's cost metric)."""
        return self.manager.size(self.node)

    def sat_count(self, variables: Sequence[int]) -> int:
        """Number of satisfying assignments over ``variables``."""
        return self.manager.sat_count(self.node, variables)

    def eval(self, assignment: Dict[int, bool]) -> bool:
        """Evaluate under an assignment covering the support."""
        return self.manager.eval(self.node, assignment)

    def shortest_cube(self) -> Optional[Dict[int, bool]]:
        """Largest cube inside the function (fewest-literal BDD path)."""
        return traversal.shortest_path_cube(self.manager, self.node)

    def cubes(self) -> Iterator[Dict[int, bool]]:
        """Iterate the disjoint path-cubes of the function."""
        return traversal.iter_cubes(self.manager, self.node)

    def minterms(self, variables: Sequence[int]) -> Iterator[int]:
        """Iterate integer-encoded minterms over ``variables``."""
        return self.manager.minterms(self.node, variables)

    def truth_table(self, variables: Sequence[int]) -> List[bool]:
        """Explicit truth table over ``variables`` (small inputs only)."""
        return traversal.truth_table(self.manager, self.node, variables)
