"""Minato-Morreale irredundant sum-of-products from a BDD interval.

Implements reference [24] of the paper: given a function interval
``[lower, upper]`` (for an ISF, ``[ON, ON + DC]``), produce an irredundant
prime cover ``F`` with ``lower <= F <= upper`` together with the BDD of the
cover.  This is the workhorse ISF minimiser the paper selects in
Section 7.5 after comparing it with constrain/restrict and LICompact
(Table 1).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .manager import FALSE, TRUE, BddManager

#: A cube is a variable -> polarity mapping; missing variables are don't care.
Cube = Dict[int, bool]


def isop(mgr: BddManager, lower: int, upper: int) -> Tuple[List[Cube], int]:
    """Compute an irredundant SOP within the interval ``[lower, upper]``.

    Parameters
    ----------
    mgr:
        The owning BDD manager.
    lower, upper:
        BDD nodes with ``lower <= upper`` (raises ``ValueError`` otherwise).

    Returns
    -------
    (cover, node):
        ``cover`` is a list of cubes; ``node`` is the BDD of their
        disjunction, satisfying ``lower <= node <= upper``.  The cover is
        irredundant: removing any cube uncovers part of ``lower``.
    """
    if not mgr.implies(lower, upper):
        raise ValueError("isop requires lower <= upper")
    cache: Dict[Tuple[int, int], Tuple[Tuple[Tuple[Tuple[int, bool], ...], ...], int]] = {}

    def rec(low: int, upp: int) -> Tuple[Tuple[Tuple[Tuple[int, bool], ...], ...], int]:
        if low == FALSE:
            return (), FALSE
        if upp == TRUE:
            return ((),), TRUE
        key = (low, upp)
        hit = cache.get(key)
        if hit is not None:
            return hit
        var = min(mgr.level(low), mgr.level(upp))
        low0 = mgr.cofactor(low, var, False)
        low1 = mgr.cofactor(low, var, True)
        upp0 = mgr.cofactor(upp, var, False)
        upp1 = mgr.cofactor(upp, var, True)

        # Vertices of the 0-half that the 1-half cannot absorb must be
        # covered by cubes carrying the literal ~var (and dually).
        need0 = mgr.diff(low0, upp1)
        need1 = mgr.diff(low1, upp0)
        cubes0, f0 = rec(need0, upp0)
        cubes1, f1 = rec(need1, upp1)

        # What is still uncovered may be captured by cubes without var.
        rest = mgr.or_(mgr.diff(low0, f0), mgr.diff(low1, f1))
        upp_dc = mgr.and_(upp0, upp1)
        cubes_dc, f_dc = rec(rest, upp_dc)

        node = mgr.or_(
            mgr.ite(mgr.var(var), f1, f0),
            f_dc,
        )
        cubes = tuple(
            [((var, False),) + cube for cube in cubes0]
            + [((var, True),) + cube for cube in cubes1]
            + list(cubes_dc)
        )
        result = (cubes, node)
        cache[key] = result
        return result

    raw_cubes, node = rec(lower, upper)
    return [dict(cube) for cube in raw_cubes], node


def isop_node(mgr: BddManager, lower: int, upper: int) -> int:
    """Like :func:`isop` but return only the BDD of the cover."""
    return isop(mgr, lower, upper)[1]


def cover_literals(cover: List[Cube]) -> int:
    """Total literal count of a cube list."""
    return sum(len(cube) for cube in cover)


def cover_to_node(mgr: BddManager, cover: List[Cube]) -> int:
    """Disjunction of a cube list as a BDD node."""
    result = FALSE
    for cube in cover:
        result = mgr.or_(result, mgr.cube(cube))
    return result
