"""Minato-Morreale irredundant sum-of-products from a BDD interval.

Implements reference [24] of the paper: given a function interval
``[lower, upper]`` (for an ISF, ``[ON, ON + DC]``), produce an irredundant
prime cover ``F`` with ``lower <= F <= upper`` together with the BDD of the
cover.  This is the workhorse ISF minimiser the paper selects in
Section 7.5 after comparing it with constrain/restrict and LICompact
(Table 1).

The expansion runs on an explicit frame stack (a three-phase state machine
per interval) so cover extraction works on BDDs of any depth under the
default interpreter recursion limit.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .manager import FALSE, TRUE, BddManager

#: A cube is a variable -> polarity mapping; missing variables are don't care.
Cube = Dict[int, bool]

# Phases of the explicit-stack expansion.
_EXPAND = 0     # inspect an interval, push its polarised halves
_MERGE = 1      # polarised halves done, push the don't-care interval
_COMBINE = 2    # all three sub-covers done, build this interval's cover


def isop(mgr: BddManager, lower: int, upper: int) -> Tuple[List[Cube], int]:
    """Compute an irredundant SOP within the interval ``[lower, upper]``.

    Parameters
    ----------
    mgr:
        The owning BDD manager.
    lower, upper:
        BDD nodes with ``lower <= upper`` (raises ``ValueError`` otherwise).

    Returns
    -------
    (cover, node):
        ``cover`` is a list of cubes; ``node`` is the BDD of their
        disjunction, satisfying ``lower <= node <= upper``.  The cover is
        irredundant: removing any cube uncovers part of ``lower``.
    """
    if not mgr.implies(lower, upper):
        raise ValueError("isop requires lower <= upper")
    cache: Dict[Tuple[int, int],
                Tuple[Tuple[Tuple[Tuple[int, bool], ...], ...], int]] = {}
    # results holds (cubes, node) pairs, one per completed sub-interval;
    # tasks is a flat mixed stack (operands pushed, phase tag popped first).
    results: List[Tuple[Tuple[Tuple[Tuple[int, bool], ...], ...], int]] = []
    tasks: list = [upper, lower, _EXPAND]
    push = tasks.append
    pop = tasks.pop
    while tasks:
        phase = pop()
        if phase == _EXPAND:
            low = pop()
            upp = pop()
            if low == FALSE:
                results.append(((), FALSE))
                continue
            if upp == TRUE:
                results.append((((),), TRUE))
                continue
            key = (low, upp)
            hit = cache.get(key)
            if hit is not None:
                results.append(hit)
                continue
            var = min(mgr.level(low), mgr.level(upp))
            low0 = mgr.cofactor(low, var, False)
            low1 = mgr.cofactor(low, var, True)
            upp0 = mgr.cofactor(upp, var, False)
            upp1 = mgr.cofactor(upp, var, True)

            # Vertices of the 0-half that the 1-half cannot absorb must be
            # covered by cubes carrying the literal ~var (and dually).
            need0 = mgr.diff(low0, upp1)
            need1 = mgr.diff(low1, upp0)
            tasks.extend((upp1, upp0, low1, low0, var, key, _MERGE,
                          upp1, need1, _EXPAND,
                          upp0, need0, _EXPAND))
        elif phase == _MERGE:
            key = pop()
            var = pop()
            low0 = pop()
            low1 = pop()
            upp0 = pop()
            upp1 = pop()
            cubes1, f1 = results.pop()
            cubes0, f0 = results.pop()
            # What is still uncovered may be captured by cubes without var.
            rest = mgr.or_(mgr.diff(low0, f0), mgr.diff(low1, f1))
            upp_dc = mgr.and_(upp0, upp1)
            push(var)
            push(key)
            push(_COMBINE)
            push(upp_dc)
            push(rest)
            push(_EXPAND)
            results.append((cubes0, f0, cubes1, f1))  # parked for _COMBINE
        else:
            key = pop()
            var = pop()
            cubes_dc, f_dc = results.pop()
            cubes0, f0, cubes1, f1 = results.pop()
            node = mgr.or_(
                mgr.ite(mgr.var(var), f1, f0),
                f_dc,
            )
            cubes = tuple(
                [((var, False),) + cube for cube in cubes0]
                + [((var, True),) + cube for cube in cubes1]
                + list(cubes_dc)
            )
            result = (cubes, node)
            cache[key] = result
            results.append(result)

    raw_cubes, node = results[0]
    return [dict(cube) for cube in raw_cubes], node


def isop_node(mgr: BddManager, lower: int, upper: int) -> int:
    """Like :func:`isop` but return only the BDD of the cover."""
    return isop(mgr, lower, upper)[1]


def cover_literals(cover: List[Cube]) -> int:
    """Total literal count of a cube list."""
    return sum(len(cube) for cube in cover)


def cover_to_node(mgr: BddManager, cover: List[Cube]) -> int:
    """Disjunction of a cube list as a BDD node."""
    result = FALSE
    for cube in cover:
        result = mgr.or_(result, mgr.cube(cube))
    return result
