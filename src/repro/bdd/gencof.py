"""Generalized cofactors: ``constrain`` and ``restrict``.

These are the BDD don't-care minimisation operators of Coudert, Berthet and
Madre (references [13, 14] of the paper).  Both return a function that
agrees with ``f`` on the care set ``c`` and is chosen to (heuristically)
shrink the BDD; they are two of the ISF-minimisation back-ends compared in
the paper's Table 1.

Contracts
---------
``constrain(f, c)`` — the image of ``x`` is ``f(mu_c(x))`` where ``mu_c``
maps each vertex to the closest vertex of ``c`` (distance weighted by
variable order).  Key algebraic identity: ``constrain(f, c) & c == f & c``.

``restrict(f, c)`` — like ``constrain`` but existentially quantifies from
the care set any variable the function does not depend on, which avoids the
variable-introduction anomaly of ``constrain``.  Same agreement identity on
the care set.

Both operators run an explicit frame stack (no Python recursion), so they
work on BDDs of any depth under the default interpreter recursion limit.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .manager import FALSE, TRUE, BddManager

# Phases of the explicit-stack walks below.
_EXPAND = 0     # inspect an (f, c) pair, push sub-pairs
_COMBINE = 1    # both cofactor results done, rebuild with ITE
_STORE = 2      # single sub-result passthrough: cache under this pair's key


def constrain(mgr: BddManager, f: int, c: int) -> int:
    """Coudert-Madre constrain (a.k.a. the generalized cofactor).

    ``c`` must not be FALSE (the empty care set has no cofactor).
    """
    if c == FALSE:
        raise ValueError("constrain is undefined for an empty care set")
    cache: Dict[Tuple[int, int], int] = {}
    results: List[int] = []
    tasks: List[tuple] = [(_EXPAND, f, c)]
    while tasks:
        frame = tasks.pop()
        phase = frame[0]
        if phase == _EXPAND:
            func, care = frame[1], frame[2]
            if care == TRUE or func <= TRUE:
                results.append(func)
                continue
            if func == care:
                results.append(TRUE)
                continue
            key = (func, care)
            hit = cache.get(key)
            if hit is not None:
                results.append(hit)
                continue
            var = min(mgr.level(func), mgr.level(care))
            care0 = mgr.cofactor(care, var, False)
            care1 = mgr.cofactor(care, var, True)
            func0 = mgr.cofactor(func, var, False)
            func1 = mgr.cofactor(func, var, True)
            if care0 == FALSE:
                tasks.append((_STORE, key))
                tasks.append((_EXPAND, func1, care1))
            elif care1 == FALSE:
                tasks.append((_STORE, key))
                tasks.append((_EXPAND, func0, care0))
            else:
                tasks.append((_COMBINE, key, var))
                tasks.append((_EXPAND, func1, care1))
                tasks.append((_EXPAND, func0, care0))
        elif phase == _COMBINE:
            key, var = frame[1], frame[2]
            r1 = results.pop()
            r0 = results.pop()
            result = mgr.ite(mgr.var(var), r1, r0)
            cache[key] = result
            results.append(result)
        else:  # _STORE: the sub-result on top doubles as this pair's result.
            cache[frame[1]] = results[-1]
    return results[0]


def restrict(mgr: BddManager, f: int, c: int) -> int:
    """Coudert-Madre restrict (constrain with quantified don't-care vars)."""
    if c == FALSE:
        raise ValueError("restrict is undefined for an empty care set")
    cache: Dict[Tuple[int, int], int] = {}
    results: List[int] = []
    tasks: List[tuple] = [(_EXPAND, f, c)]
    while tasks:
        frame = tasks.pop()
        phase = frame[0]
        if phase == _EXPAND:
            func, care = frame[1], frame[2]
            if care == TRUE or func <= TRUE:
                results.append(func)
                continue
            key = (func, care)
            hit = cache.get(key)
            if hit is not None:
                results.append(hit)
                continue
            level_f = mgr.level(func)
            level_c = mgr.level(care)
            if level_c < level_f:
                # The care set constrains a variable the function ignores:
                # drop it from the care set instead of introducing it.
                reduced = mgr.or_(mgr.cofactor(care, level_c, False),
                                  mgr.cofactor(care, level_c, True))
                tasks.append((_STORE, key))
                tasks.append((_EXPAND, func, reduced))
                continue
            var = level_f
            care0 = mgr.cofactor(care, var, False)
            care1 = mgr.cofactor(care, var, True)
            func0 = mgr.cofactor(func, var, False)
            func1 = mgr.cofactor(func, var, True)
            if care0 == FALSE:
                tasks.append((_STORE, key))
                tasks.append((_EXPAND, func1, care1))
            elif care1 == FALSE:
                tasks.append((_STORE, key))
                tasks.append((_EXPAND, func0, care0))
            else:
                tasks.append((_COMBINE, key, var))
                tasks.append((_EXPAND, func1, care1))
                tasks.append((_EXPAND, func0, care0))
        elif phase == _COMBINE:
            key, var = frame[1], frame[2]
            r1 = results.pop()
            r0 = results.pop()
            result = mgr.ite(mgr.var(var), r1, r0)
            cache[key] = result
            results.append(result)
        else:
            cache[frame[1]] = results[-1]
    return results[0]


def minimize_with_constrain(mgr: BddManager, on: int, dc: int) -> int:
    """Pick an implementation of the ISF ``[on, on+dc]`` via constrain.

    The care set is the complement of the don't-care set; the returned
    function agrees with ``on`` on the care set, hence lies in the interval.
    """
    care = mgr.not_(dc)
    if care == FALSE:
        return TRUE
    return constrain(mgr, on, care)


def minimize_with_restrict(mgr: BddManager, on: int, dc: int) -> int:
    """Pick an implementation of the ISF ``[on, on+dc]`` via restrict."""
    care = mgr.not_(dc)
    if care == FALSE:
        return TRUE
    return restrict(mgr, on, care)
