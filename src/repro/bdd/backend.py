"""The function-engine backend protocol.

:mod:`repro.core` never manipulates BDD nodes directly: every algorithm
— ISF projection, QuickSolver, the minimisers (ISOP, generalized
cofactors, squeeze), the BREL search loop, output-block partitioning,
and the memo signatures — goes through the operation surface defined
here.  :class:`FunctionBackend` names that surface explicitly so a
second engine can implement it and slot in underneath the whole stack.

Two implementations ship:

* :class:`repro.bdd.BddManager` — hash-consed ROBDDs, the general
  engine (any number of variables, shared DAGs, GC);
* :class:`repro.table.TableManager` — packed truth tables over a small
  fixed-width variable frame (word-wise bitwise kernels, no node
  machinery), the narrow-subproblem fast path.

The contract every backend must honour
--------------------------------------
* **Handles.** Functions are opaque ``int`` handles; ``FALSE == 0`` and
  ``TRUE == 1`` are the terminal constants, and handle equality is
  semantic equality (``f == g`` iff the functions are equal).  Core
  code relies on both (``conflicts == FALSE``, set/dict keys).
* **Structure.** ``level(f)`` is the top (minimum) support variable of
  a non-terminal handle, and ``low(f)``/``high(f)`` are its cofactors
  at that variable — the *reduced-BDD view* of the function, whatever
  the representation.  Structural walks (shortest-path cube extraction,
  cube iteration) only use this view, so they behave identically on
  every backend.
* **Fingerprints.** ``fingerprint``/``fingerprints``/
  ``support_fingerprint`` must reproduce the canonical 64-bit hashes of
  :mod:`repro.bdd.manager` bit-for-bit: the memo store keys templates
  on them, and cross-backend template sharing (a subproblem solved on
  one backend re-instantiated under the other) only works when equal
  functions hash equally everywhere.
* **Cost parity.** ``size(f)`` counts the internal nodes of the
  *reduced BDD* of ``f`` (constants are 0) regardless of
  representation, so the paper's BDD-size cost prices a candidate the
  same on every backend.
* **Stats.** ``stats()`` must include at least the ``"nodes"``,
  ``"cache_hits"`` and ``"cache_misses"`` counters the solver samples.
"""

from __future__ import annotations

from typing import (Any, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

try:  # Protocol is 3.8+; keep the import defensive for exotic builds.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - pre-3.8 fallback
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

__all__ = ["FunctionBackend", "BACKEND_METHODS", "conforms"]

#: Every method a conforming backend must provide.  The conformance
#: helper (and the test suite) checks presence against this list, so a
#: protocol extension must be registered here to be enforced.
BACKEND_METHODS = (
    # variable frame
    "add_var", "add_vars", "var", "nvar", "var_name",
    # reduced-BDD structural view
    "level", "low", "high", "is_terminal",
    # connectives and quantifiers
    "apply", "and_", "or_", "xor_", "xnor_", "diff", "not_", "ite",
    "implies", "cofactor", "restrict_cube", "exists", "forall",
    "compose",
    # structural queries
    "support", "size", "shared_size", "sat_count", "eval",
    # cube / minterm construction
    "cube", "minterm", "from_minterms", "minterms",
    # canonical content hashes
    "fingerprint", "fingerprints", "support_fingerprint",
    # two-level synthesis
    "isop",
    # lifecycle
    "pin", "unpin", "collect", "stats",
)


@runtime_checkable
class FunctionBackend(Protocol):
    """Structural protocol of a function engine (see module docstring).

    ``BddManager`` and ``TableManager`` both conform; annotate core
    code against this type, not a concrete manager.
    """

    # -- variable frame ------------------------------------------------
    def add_var(self, name: Optional[str] = None) -> int: ...
    def add_vars(self, count: int, prefix: str = "v") -> List[int]: ...
    @property
    def num_vars(self) -> int: ...
    def var(self, index: int) -> int: ...
    def nvar(self, index: int) -> int: ...
    def var_name(self, index: int) -> str: ...

    # -- reduced-BDD structural view ------------------------------------
    def level(self, f: int) -> int: ...
    def low(self, f: int) -> int: ...
    def high(self, f: int) -> int: ...
    def is_terminal(self, f: int) -> bool: ...

    # -- connectives and quantifiers ------------------------------------
    def apply(self, op: str, f: int, g: int) -> int: ...
    def and_(self, f: int, g: int) -> int: ...
    def or_(self, f: int, g: int) -> int: ...
    def xor_(self, f: int, g: int) -> int: ...
    def xnor_(self, f: int, g: int) -> int: ...
    def diff(self, f: int, g: int) -> int: ...
    def not_(self, f: int) -> int: ...
    def ite(self, f: int, g: int, h: int) -> int: ...
    def implies(self, f: int, g: int) -> bool: ...
    def cofactor(self, f: int, var: int, value: bool) -> int: ...
    def restrict_cube(self, f: int,
                      assignment: Dict[int, bool]) -> int: ...
    def exists(self, f: int, variables: Iterable[int]) -> int: ...
    def forall(self, f: int, variables: Iterable[int]) -> int: ...
    def compose(self, f: int, var: int, g: int) -> int: ...

    # -- structural queries ---------------------------------------------
    def support(self, f: int) -> Tuple[int, ...]: ...
    def size(self, f: int) -> int: ...
    def shared_size(self, functions: Sequence[int]) -> int: ...
    def sat_count(self, f: int, variables: Sequence[int]) -> int: ...
    def eval(self, f: int, assignment: Dict[int, bool]) -> bool: ...

    # -- cube / minterm construction ------------------------------------
    def cube(self, assignment: Dict[int, bool]) -> int: ...
    def minterm(self, variables: Sequence[int], value: int) -> int: ...
    def from_minterms(self, variables: Sequence[int],
                      values: Iterable[int]) -> int: ...
    def minterms(self, f: int,
                 variables: Sequence[int]) -> Iterator[int]: ...

    # -- canonical content hashes ---------------------------------------
    def fingerprint(self, f: int) -> int: ...
    def fingerprints(self, functions: Sequence[int],
                     var_map: Optional[Dict[int, int]] = None
                     ) -> Tuple[int, ...]: ...
    def support_fingerprint(self, f: int) -> int: ...

    # -- two-level synthesis --------------------------------------------
    def isop(self, lower: int,
             upper: int) -> Tuple[List[Dict[int, bool]], int]: ...

    # -- lifecycle ------------------------------------------------------
    def pin(self, node: int) -> int: ...
    def unpin(self, node: int) -> None: ...
    def collect(self, extra_roots: Iterable[int] = ()
                ) -> Dict[int, int]: ...
    def stats(self) -> Dict[str, Any]: ...


def conforms(backend: Any) -> List[str]:
    """The :data:`BACKEND_METHODS` entries ``backend`` is missing.

    An empty list means the object exposes the full protocol surface
    (presence only; semantics are covered by the differential suite).
    """
    return [name for name in BACKEND_METHODS
            if not callable(getattr(backend, name, None))
            and name != "num_vars"]
