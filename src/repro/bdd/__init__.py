"""BDD engine: the reproduction's substitute for CUDD.

Public surface:

* :class:`BddManager` — node store, Boolean connectives, quantifiers.
* :class:`FunctionBackend` — the engine protocol every backend
  (ROBDD or truth-table) implements; core code is written against it.
* :class:`Bdd` — operator-overloaded function handle.
* :func:`isop` — Minato-Morreale irredundant SOP within an interval.
* :func:`constrain` / :func:`restrict` — generalized cofactors.
* :func:`squeeze` — safe interval minimisation (LICompact stand-in).
* traversal helpers — shortest-path cube, cube/minterm iteration.
"""

from .backend import BACKEND_METHODS, FunctionBackend, conforms
from .function import Bdd
from .gencof import (constrain, minimize_with_constrain,
                     minimize_with_restrict, restrict)
from .isop import cover_literals, cover_to_node, isop, isop_node
from .manager import FALSE, TRUE, BddManager
from .safemin import minimize_with_squeeze, squeeze
from .traversal import (count_paths, iter_cubes, pick_minterm,
                        shortest_path_cube, truth_table)
from .dot import to_dot

__all__ = [
    "BACKEND_METHODS",
    "Bdd",
    "BddManager",
    "FALSE",
    "FunctionBackend",
    "TRUE",
    "conforms",
    "constrain",
    "count_paths",
    "cover_literals",
    "cover_to_node",
    "isop",
    "isop_node",
    "iter_cubes",
    "minimize_with_constrain",
    "minimize_with_restrict",
    "minimize_with_squeeze",
    "pick_minterm",
    "restrict",
    "shortest_path_cube",
    "squeeze",
    "to_dot",
    "truth_table",
]
