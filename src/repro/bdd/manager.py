"""Hash-consed Binary Decision Diagram manager.

This module is the reproduction's stand-in for CUDD [5]: a reduced ordered
BDD package with a unique table, a computed-table cache, and the operation
set that the BREL solver needs (ITE-based Boolean connectives, cofactors,
quantifiers, composition, permutation, SAT counting and structural metrics).

Design notes
------------
* Nodes are identified by non-negative integers.  ``0`` and ``1`` are the
  constant nodes FALSE and TRUE.  Because nodes are hash-consed (the unique
  table guarantees one index per ``(var, low, high)`` triple), *semantic
  equality of functions is integer equality of node indices*.
* Variables are identified by their integer *level*; the variable order is
  the creation order and is never changed at runtime (no sifting).  Callers
  that care about the order — for example, the split-selection heuristic of
  the paper's Section 7.4 picks "the first output in the BDD variable
  order" — can rely on ``var index == level``.
* There are no complement edges.  This costs a small constant factor but
  keeps every algorithm directly comparable to its textbook statement.

Only the manager lives here; the ergonomic operator-overloaded wrapper is
:class:`repro.bdd.function.Bdd`.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Node index of the constant FALSE function.
FALSE = 0
#: Node index of the constant TRUE function.
TRUE = 1

#: Sentinel level for the two terminal nodes; greater than any variable level.
TERMINAL_LEVEL = 1 << 30

# Operation tags for computed-table keys.  Plain ints keep tuple keys small.
_OP_AND = 0
_OP_XOR = 1
_OP_NOT = 2
_OP_ITE = 3
_OP_EXISTS = 4
_OP_FORALL = 5
_OP_COMPOSE = 6
_OP_PERMUTE = 7
_OP_OR = 8
_OP_COFACTOR = 9


class BddManager:
    """A reduced ordered BDD manager with hash-consing.

    Parameters
    ----------
    var_names:
        Optional initial variable names; further variables can be added with
        :meth:`add_var`.

    Examples
    --------
    >>> mgr = BddManager(["a", "b"])
    >>> a, b = mgr.var(0), mgr.var(1)
    >>> f = mgr.and_(a, mgr.not_(b))
    >>> mgr.eval(f, {0: True, 1: False})
    True
    """

    def __init__(self, var_names: Optional[Iterable[str]] = None) -> None:
        # Parallel arrays for node fields; index == node id.
        self._level: List[int] = [TERMINAL_LEVEL, TERMINAL_LEVEL]
        self._low: List[int] = [FALSE, TRUE]
        self._high: List[int] = [FALSE, TRUE]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._cache: Dict[Tuple, int] = {}
        self._var_nodes: List[int] = []
        self._names: List[str] = []
        if var_names is not None:
            for name in var_names:
                self.add_var(name)
        # BDD recursion depth is bounded by the variable count, but ISOP /
        # traversal helpers recurse through several managers' worth of
        # frames; raise the interpreter limit once, defensively.
        if sys.getrecursionlimit() < 100000:
            sys.setrecursionlimit(100000)

    # ------------------------------------------------------------------
    # Variable handling
    # ------------------------------------------------------------------
    def add_var(self, name: Optional[str] = None) -> int:
        """Create a fresh variable at the bottom of the order.

        Returns the variable index (== its level in the fixed order).
        """
        index = len(self._var_nodes)
        if name is None:
            name = "v%d" % index
        node = self._mk(index, FALSE, TRUE)
        self._var_nodes.append(node)
        self._names.append(name)
        return index

    def add_vars(self, count: int, prefix: str = "v") -> List[int]:
        """Create ``count`` fresh variables named ``prefix0 .. prefixN``."""
        return [self.add_var("%s%d" % (prefix, len(self._var_nodes)))
                for _ in range(count)]

    @property
    def num_vars(self) -> int:
        """Number of variables declared in this manager."""
        return len(self._var_nodes)

    @property
    def num_nodes(self) -> int:
        """Total number of nodes ever created (terminals included)."""
        return len(self._level)

    def var(self, index: int) -> int:
        """Return the node for the positive literal of variable ``index``."""
        return self._var_nodes[index]

    def nvar(self, index: int) -> int:
        """Return the node for the negative literal of variable ``index``."""
        return self.not_(self._var_nodes[index])

    def var_name(self, index: int) -> str:
        """Return the declared name of variable ``index``."""
        return self._names[index]

    def var_index_of_node(self, node: int) -> int:
        """Return the variable labelling ``node`` (undefined for terminals)."""
        return self._level[node]

    def level(self, node: int) -> int:
        """Return the level of ``node`` (``TERMINAL_LEVEL`` for constants)."""
        return self._level[node]

    def low(self, node: int) -> int:
        """Return the 0-cofactor child of ``node``."""
        return self._low[node]

    def high(self, node: int) -> int:
        """Return the 1-cofactor child of ``node``."""
        return self._high[node]

    def is_terminal(self, node: int) -> bool:
        """True for the constant nodes FALSE and TRUE."""
        return node <= TRUE

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create the node ``(var, low, high)`` (reduction applied)."""
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def clear_caches(self) -> None:
        """Drop the computed table (unique table is preserved)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Core Boolean connectives
    # ------------------------------------------------------------------
    def not_(self, f: int) -> int:
        """Complement of ``f``."""
        if f == FALSE:
            return TRUE
        if f == TRUE:
            return FALSE
        key = (_OP_NOT, f)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._mk(self._level[f],
                          self.not_(self._low[f]),
                          self.not_(self._high[f]))
        self._cache[key] = result
        return result

    def and_(self, f: int, g: int) -> int:
        """Conjunction of ``f`` and ``g``."""
        if f == g:
            return f
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE:
            return f
        if f > g:
            f, g = g, f
        key = (_OP_AND, f, g)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        level_f, level_g = self._level[f], self._level[g]
        top = level_f if level_f < level_g else level_g
        f0, f1 = (self._low[f], self._high[f]) if level_f == top else (f, f)
        g0, g1 = (self._low[g], self._high[g]) if level_g == top else (g, g)
        result = self._mk(top, self.and_(f0, g0), self.and_(f1, g1))
        self._cache[key] = result
        return result

    def or_(self, f: int, g: int) -> int:
        """Disjunction of ``f`` and ``g``."""
        if f == g:
            return f
        if f == TRUE or g == TRUE:
            return TRUE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f > g:
            f, g = g, f
        key = (_OP_OR, f, g)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        level_f, level_g = self._level[f], self._level[g]
        top = level_f if level_f < level_g else level_g
        f0, f1 = (self._low[f], self._high[f]) if level_f == top else (f, f)
        g0, g1 = (self._low[g], self._high[g]) if level_g == top else (g, g)
        result = self._mk(top, self.or_(f0, g0), self.or_(f1, g1))
        self._cache[key] = result
        return result

    def xor_(self, f: int, g: int) -> int:
        """Exclusive-or of ``f`` and ``g``."""
        if f == g:
            return FALSE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == TRUE:
            return self.not_(g)
        if g == TRUE:
            return self.not_(f)
        if f > g:
            f, g = g, f
        key = (_OP_XOR, f, g)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        level_f, level_g = self._level[f], self._level[g]
        top = level_f if level_f < level_g else level_g
        f0, f1 = (self._low[f], self._high[f]) if level_f == top else (f, f)
        g0, g1 = (self._low[g], self._high[g]) if level_g == top else (g, g)
        result = self._mk(top, self.xor_(f0, g0), self.xor_(f1, g1))
        self._cache[key] = result
        return result

    def xnor_(self, f: int, g: int) -> int:
        """Equivalence (XNOR) of ``f`` and ``g``."""
        return self.not_(self.xor_(f, g))

    def implies(self, f: int, g: int) -> bool:
        """Decide the inclusion ``f <= g`` (i.e. ``f & ~g == 0``)."""
        return self.and_(f, self.not_(g)) == FALSE

    def diff(self, f: int, g: int) -> int:
        """Set difference ``f & ~g``."""
        return self.and_(f, self.not_(g))

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f & g) | (~f & h)``."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return self.not_(f)
        key = (_OP_ITE, f, g, h)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        level_f, level_g, level_h = (self._level[f], self._level[g],
                                     self._level[h])
        top = min(level_f, level_g, level_h)
        f0, f1 = (self._low[f], self._high[f]) if level_f == top else (f, f)
        g0, g1 = (self._low[g], self._high[g]) if level_g == top else (g, g)
        h0, h1 = (self._low[h], self._high[h]) if level_h == top else (h, h)
        result = self._mk(top, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Cofactors and quantification
    # ------------------------------------------------------------------
    def cofactor(self, f: int, var: int, value: bool) -> int:
        """Restrict variable ``var`` of ``f`` to ``value`` (Definition 6.2)."""
        if self._level[f] > var:
            return f
        key = (_OP_COFACTOR, f, var, value)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        level = self._level[f]
        if level == var:
            result = self._high[f] if value else self._low[f]
        else:
            result = self._mk(level,
                              self.cofactor(self._low[f], var, value),
                              self.cofactor(self._high[f], var, value))
        self._cache[key] = result
        return result

    def restrict_cube(self, f: int, assignment: Dict[int, bool]) -> int:
        """Restrict several variables at once; ``assignment`` maps var->value."""
        result = f
        for var, value in sorted(assignment.items()):
            result = self.cofactor(result, var, value)
        return result

    def exists(self, f: int, variables: Iterable[int]) -> int:
        """Existential abstraction of ``variables`` from ``f``."""
        var_key = self._quant_key(variables)
        if not var_key:
            return f
        return self._exists_rec(f, var_key, max(var_key))

    def forall(self, f: int, variables: Iterable[int]) -> int:
        """Universal abstraction of ``variables`` from ``f``."""
        var_key = self._quant_key(variables)
        if not var_key:
            return f
        return self.not_(self._exists_rec(self.not_(f), var_key,
                                          max(var_key)))

    @staticmethod
    def _quant_key(variables: Iterable[int]) -> Tuple[int, ...]:
        return tuple(sorted(set(variables)))

    def _exists_rec(self, f: int, variables: Tuple[int, ...],
                    max_var: int) -> int:
        if f <= TRUE or self._level[f] > max_var:
            return f
        key = (_OP_EXISTS, f, variables)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        level = self._level[f]
        low = self._exists_rec(self._low[f], variables, max_var)
        high = self._exists_rec(self._high[f], variables, max_var)
        if level in variables:
            result = self.or_(low, high)
        else:
            result = self._mk(level, low, high)
        self._cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Composition and permutation
    # ------------------------------------------------------------------
    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` inside ``f``."""
        if self._level[f] > var:
            return f
        return self.ite(g, self.cofactor(f, var, True),
                        self.cofactor(f, var, False))

    def vector_compose(self, f: int, substitution: Dict[int, int]) -> int:
        """Substitute several variables simultaneously.

        ``substitution`` maps variable index to replacement node.  The
        substitution is simultaneous: replacement functions are *not*
        re-substituted.  This is implemented by a single bottom-up rebuild.
        """
        if not substitution:
            return f
        sub_key = tuple(sorted(substitution.items()))
        memo: Dict[int, int] = {}

        def rebuild(node: int) -> int:
            if node <= TRUE:
                return node
            hit = memo.get(node)
            if hit is not None:
                return hit
            level = self._level[node]
            low = rebuild(self._low[node])
            high = rebuild(self._high[node])
            guard = substitution.get(level)
            if guard is None:
                guard = self._var_nodes[level]
            result = self.ite(guard, high, low)
            memo[node] = result
            return result

        key = (_OP_COMPOSE, f, sub_key)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = rebuild(f)
        self._cache[key] = result
        return result

    def permute(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variables of ``f`` according to ``mapping`` (var -> var).

        The mapping must be injective on the support of ``f``; variables not
        mentioned are left in place.
        """
        if not mapping:
            return f
        map_key = tuple(sorted(mapping.items()))
        key = (_OP_PERMUTE, f, map_key)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        memo: Dict[int, int] = {}

        def rebuild(node: int) -> int:
            if node <= TRUE:
                return node
            hit = memo.get(node)
            if hit is not None:
                return hit
            level = self._level[node]
            target = mapping.get(level, level)
            low = rebuild(self._low[node])
            high = rebuild(self._high[node])
            result = self.ite(self._var_nodes[target], high, low)
            memo[node] = result
            return result

        result = rebuild(f)
        self._cache[key] = result
        return result

    def swap_vars(self, f: int, var_a: int, var_b: int) -> int:
        """Exchange two variables of ``f`` (used by symmetry detection)."""
        return self.permute(f, {var_a: var_b, var_b: var_a})

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    def support(self, f: int) -> Tuple[int, ...]:
        """Return the sorted tuple of variables ``f`` depends on."""
        seen = set()
        variables = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            variables.add(self._level[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return tuple(sorted(variables))

    def size(self, f: int) -> int:
        """Number of internal (non-terminal) DAG nodes of ``f``.

        This is the paper's BDD-size cost metric (Section 7.3); the constant
        functions have size 0.
        """
        seen = set()
        stack = [f]
        count = 0
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            count += 1
            stack.append(self._low[node])
            stack.append(self._high[node])
        return count

    def shared_size(self, functions: Sequence[int]) -> int:
        """DAG node count of a set of functions with sharing."""
        seen = set()
        stack = list(functions)
        count = 0
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            count += 1
            stack.append(self._low[node])
            stack.append(self._high[node])
        return count

    def sat_count(self, f: int, variables: Sequence[int]) -> int:
        """Number of satisfying assignments of ``f`` over ``variables``.

        ``variables`` must be a superset of ``support(f)``.
        """
        total = len(set(variables))
        memo: Dict[int, int] = {}

        def count(node: int) -> int:
            # With count(TRUE) = 2^total, halving once per internal node on a
            # path leaves 2^(total - k) assignments for a path with k
            # literals, which sums to the exact model count; skipped levels
            # need no special handling.
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1 << total
            hit = memo.get(node)
            if hit is None:
                hit = (count(self._low[node]) + count(self._high[node])) >> 1
                memo[node] = hit
            return hit

        return count(f)

    def eval(self, f: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate ``f`` under a (complete-on-support) variable assignment."""
        node = f
        while node > TRUE:
            if assignment[self._level[node]]:
                node = self._high[node]
            else:
                node = self._low[node]
        return node == TRUE

    # ------------------------------------------------------------------
    # Cube construction helpers
    # ------------------------------------------------------------------
    def cube(self, assignment: Dict[int, bool]) -> int:
        """Build the conjunction of literals described by ``assignment``."""
        result = TRUE
        for var in sorted(assignment, reverse=True):
            literal = (self._var_nodes[var] if assignment[var]
                       else self.nvar(var))
            result = self.and_(literal, result)
        return result

    def minterm(self, variables: Sequence[int], value: int) -> int:
        """Build the minterm of ``variables`` encoded by integer ``value``.

        Bit ``i`` of ``value`` gives the polarity of ``variables[i]``
        (bit 0 == first variable in the sequence).
        """
        assignment = {var: bool((value >> i) & 1)
                      for i, var in enumerate(variables)}
        return self.cube(assignment)

    def from_minterms(self, variables: Sequence[int],
                      values: Iterable[int]) -> int:
        """Disjunction of :meth:`minterm` over ``values``."""
        result = FALSE
        for value in values:
            result = self.or_(result, self.minterm(variables, value))
        return result

    def minterms(self, f: int, variables: Sequence[int]) -> Iterator[int]:
        """Yield the integer encodings of all minterms of ``f``.

        ``variables`` must cover the support of ``f``; bit ``i`` of each
        yielded value is the polarity of ``variables[i]``.
        """
        n = len(variables)
        position = {var: i for i, var in enumerate(variables)}
        var_levels = sorted(position)

        def walk(node: int, index: int, acc: int) -> Iterator[int]:
            if node == FALSE:
                return
            if index == len(var_levels):
                yield acc
                return
            var = var_levels[index]
            if node > TRUE and self._level[node] == var:
                low, high = self._low[node], self._high[node]
            else:
                low = high = node
            yield from walk(low, index + 1, acc)
            yield from walk(high, index + 1, acc | (1 << position[var]))

        if n == 0:
            if f == TRUE:
                yield 0
            return
        yield from walk(f, 0, 0)
