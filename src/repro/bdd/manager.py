"""Hash-consed Binary Decision Diagram manager.

This module is the reproduction's stand-in for CUDD [5]: a reduced ordered
BDD package with a unique table, a computed-table cache, and the operation
set that the BREL solver needs (ITE-based Boolean connectives, cofactors,
quantifiers, composition, permutation, SAT counting and structural metrics).

Design notes
------------
* Nodes are identified by non-negative integers.  ``0`` and ``1`` are the
  constant nodes FALSE and TRUE.  Because nodes are hash-consed (the unique
  table guarantees one index per ``(var, low, high)`` triple), *semantic
  equality of functions is integer equality of node indices*.
* Variables are identified by their integer *level*; the variable order is
  the creation order and is never changed at runtime (no sifting).  Callers
  that care about the order — for example, the split-selection heuristic of
  the paper's Section 7.4 picks "the first output in the BDD variable
  order" — can rely on ``var index == level``.
* There are no complement edges.  This costs a small constant factor but
  keeps every algorithm directly comparable to its textbook statement.
* Every traversal is **iterative**: operations run an explicit work stack
  (:meth:`_apply` and friends), so BDD depth is bounded by available heap,
  not by the interpreter recursion limit.  The manager never touches
  ``sys.setrecursionlimit``.  The work stack is a flat mixed list — visit
  frames push their operands and a ``False`` tag, combine frames push
  their cache key, top level and a ``True`` tag — which avoids a tuple
  allocation per frame on the hot path.
* The computed table is **bounded**: when it reaches ``cache_limit``
  entries it is flushed wholesale (the CUDD-style lossy-cache policy —
  results are always recomputable from the unique table).  Hit, miss,
  eviction and flush counters are exposed through :meth:`stats`.
* Memory is reclaimable: roots survive :meth:`collect` (a mark-and-sweep
  pass that compacts the node arrays) only when reachable from a
  :meth:`pin`\\ ned node, a variable, or an explicit extra root.  ``collect``
  returns the old-id -> new-id mapping so holders of surviving roots can
  remap their handles.

Only the manager lives here; the ergonomic operator-overloaded wrapper is
:class:`repro.bdd.function.Bdd`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Node index of the constant FALSE function.
FALSE = 0
#: Node index of the constant TRUE function.
TRUE = 1

#: Sentinel level for the two terminal nodes; greater than any variable level.
TERMINAL_LEVEL = 1 << 30

# Operation tags for computed-table keys.  Plain ints keep tuple keys small.
_OP_AND = 0
_OP_XOR = 1
_OP_NOT = 2
_OP_ITE = 3
_OP_EXISTS = 4
_OP_FORALL = 5
_OP_COMPOSE = 6
_OP_PERMUTE = 7
_OP_OR = 8
_OP_COFACTOR = 9
_OP_ANDNOT = 10

#: Default computed-table size bound (entries) before a wholesale flush.
DEFAULT_CACHE_LIMIT = 1 << 18

#: Operations whose top variable has at most this many levels below it may
#: use the bounded recursive twins: recursion depth is capped by the level
#: span, so ~3 interpreter frames per level stays far inside the *default*
#: interpreter limit.  Deeper operands take the explicit-stack engine.
MAX_RECURSIVE_LEVELS = 120

# Terminal-rule actions for the generic apply.  The values FALSE/TRUE
# double as "return this constant"; _OTHER returns the non-constant
# operand, _NEG_OTHER its complement.
_OTHER = 2
_NEG_OTHER = 3

#: Per-op terminal-rule table for the generic binary :meth:`BddManager._apply`:
#: ``op -> (commutative, rule when operands are equal,
#: rule when the left operand is FALSE / TRUE,
#: rule when the right operand is FALSE / TRUE)``.
#: Commutative ops canonicalise their cache key by swapping to ``f < g``.
_TERMINAL_RULES = {
    _OP_AND: (True, _OTHER, FALSE, _OTHER, FALSE, _OTHER),
    _OP_OR: (True, _OTHER, _OTHER, TRUE, _OTHER, TRUE),
    _OP_XOR: (True, FALSE, _OTHER, _NEG_OTHER, _OTHER, _NEG_OTHER),
    # f & ~g: the workhorse of diff/implies — fusing the complement into
    # the apply avoids materialising ~g.
    _OP_ANDNOT: (False, FALSE, FALSE, _NEG_OTHER, _OTHER, FALSE),
}

#: Public operation names accepted by :meth:`BddManager.apply`.
_APPLY_NAMES = {"and": _OP_AND, "or": _OP_OR, "xor": _OP_XOR,
                "andnot": _OP_ANDNOT}

# ----------------------------------------------------------------------
# Structural fingerprints
# ----------------------------------------------------------------------
# 64-bit content hashes of BDD structure: fp(node) mixes the node's
# (possibly renumbered) variable level with the fingerprints of its two
# children.  The mixing is a fixed splitmix64-style finalizer, NOT
# Python's randomised hash(), so fingerprints are deterministic across
# processes — a requirement for memo stores pre-seeded into worker
# processes (Session.solve_many) and for cross-manager equality.
_FP_MASK = (1 << 64) - 1
#: Fingerprints of the terminal nodes (arbitrary fixed odd constants).
_FP_FALSE = 0x9AE16A3B2F90404F
_FP_TRUE = 0xC2B2AE3D27D4EB4F


def _fp_mix(level: int, lo: int, hi: int) -> int:
    """Combine a variable level and two child fingerprints into one."""
    h = (level * 0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019) & _FP_MASK
    h ^= (lo * 0xBF58476D1CE4E5B9) & _FP_MASK
    h = (h ^ (h >> 27)) * 0x94D049BB133111EB & _FP_MASK
    h ^= (hi * 0xFF51AFD7ED558CCD) & _FP_MASK
    h = (h ^ (h >> 29)) * 0xC4CEB9FE1A85EC53 & _FP_MASK
    return h ^ (h >> 32)


class BddManager:
    """A reduced ordered BDD manager with hash-consing.

    Parameters
    ----------
    var_names:
        Optional initial variable names; further variables can be added with
        :meth:`add_var`.
    cache_limit:
        Entry bound of the computed table (``None`` disables the bound).
        See :meth:`stats` for the counters this feeds.

    Examples
    --------
    >>> mgr = BddManager(["a", "b"])
    >>> a, b = mgr.var(0), mgr.var(1)
    >>> f = mgr.and_(a, mgr.not_(b))
    >>> mgr.eval(f, {0: True, 1: False})
    True
    """

    def __init__(self, var_names: Optional[Iterable[str]] = None,
                 cache_limit: Optional[int] = DEFAULT_CACHE_LIMIT) -> None:
        # Parallel arrays for node fields; index == node id.
        self._level: List[int] = [TERMINAL_LEVEL, TERMINAL_LEVEL]
        self._low: List[int] = [FALSE, TRUE]
        self._high: List[int] = [FALSE, TRUE]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Bounded computed table, flushed wholesale at the limit.  The dict
        # object is stable for the manager's lifetime (cleared in place) so
        # hot loops can bind it locally.
        if cache_limit is not None and cache_limit < 1:
            raise ValueError("cache_limit must be a positive int or None")
        self.cache_limit = cache_limit
        self._cache_limit = (cache_limit if cache_limit is not None
                             else float("inf"))
        self._cache: Dict[Tuple, int] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        self._cache_flushes = 0
        # Garbage collection state: pinned roots survive collect().
        self._pins: Dict[int, int] = {}
        self._gc_runs = 0
        self._gc_reclaimed = 0
        self._peak_nodes = 2
        # Structural-fingerprint memo (node id -> 64-bit content hash);
        # values are id-independent, keys are remapped by collect().
        self._fp_memo: Dict[int, int] = {FALSE: _FP_FALSE, TRUE: _FP_TRUE}
        self._var_nodes: List[int] = []
        self._names: List[str] = []
        # Levels >= this may recurse (bounded depth); levels below it have
        # too many levels under them and take the explicit-stack engine.
        self._iter_floor = 0
        if var_names is not None:
            for name in var_names:
                self.add_var(name)

    # ------------------------------------------------------------------
    # Variable handling
    # ------------------------------------------------------------------
    def add_var(self, name: Optional[str] = None) -> int:
        """Create a fresh variable at the bottom of the order.

        Returns the variable index (== its level in the fixed order).
        """
        index = len(self._var_nodes)
        if name is None:
            name = "v%d" % index
        node = self._mk(index, FALSE, TRUE)
        self._var_nodes.append(node)
        self._names.append(name)
        floor = len(self._var_nodes) - MAX_RECURSIVE_LEVELS
        self._iter_floor = floor if floor > 0 else 0
        return index

    def add_vars(self, count: int, prefix: str = "v") -> List[int]:
        """Create ``count`` fresh variables named ``prefix0 .. prefixN``."""
        return [self.add_var("%s%d" % (prefix, len(self._var_nodes)))
                for _ in range(count)]

    @property
    def num_vars(self) -> int:
        """Number of variables declared in this manager."""
        return len(self._var_nodes)

    @property
    def num_nodes(self) -> int:
        """Total number of nodes currently stored (terminals included)."""
        return len(self._level)

    def var(self, index: int) -> int:
        """Return the node for the positive literal of variable ``index``."""
        return self._var_nodes[index]

    def nvar(self, index: int) -> int:
        """Return the node for the negative literal of variable ``index``."""
        return self.not_(self._var_nodes[index])

    def var_name(self, index: int) -> str:
        """Return the declared name of variable ``index``."""
        return self._names[index]

    def var_index_of_node(self, node: int) -> int:
        """Return the variable labelling ``node`` (undefined for terminals)."""
        return self._level[node]

    def level(self, node: int) -> int:
        """Return the level of ``node`` (``TERMINAL_LEVEL`` for constants)."""
        return self._level[node]

    def low(self, node: int) -> int:
        """Return the 0-cofactor child of ``node``."""
        return self._low[node]

    def high(self, node: int) -> int:
        """Return the 1-cofactor child of ``node``."""
        return self._high[node]

    def is_terminal(self, node: int) -> bool:
        """True for the constant nodes FALSE and TRUE."""
        return node <= TRUE

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create the node ``(var, low, high)`` (reduction applied)."""
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    # ------------------------------------------------------------------
    # Computed-table management
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop the computed table (unique table is preserved)."""
        self._cache.clear()

    def set_cache_limit(self, cache_limit: Optional[int]) -> None:
        """Re-bound the computed table (``None`` removes the bound).

        Takes effect immediately: a table already over the new bound is
        flushed on its next insert.
        """
        if cache_limit is not None and cache_limit < 1:
            raise ValueError("cache_limit must be a positive int or None")
        self.cache_limit = cache_limit
        self._cache_limit = (cache_limit if cache_limit is not None
                             else float("inf"))

    def _flush_cache(self) -> None:
        """The computed table hit its bound: evict everything.

        Lossy by design (the CUDD policy): every entry is recomputable, so
        a wholesale flush trades repeat work for a hard memory bound.
        """
        self._cache_evictions += len(self._cache)
        self._cache_flushes += 1
        self._cache.clear()

    def _cache_get(self, key: Tuple) -> Optional[int]:
        """Counted computed-table lookup (cold-path helper)."""
        hit = self._cache.get(key)
        if hit is None:
            self._cache_misses += 1
        else:
            self._cache_hits += 1
        return hit

    def _cache_put(self, key: Tuple, value: int) -> None:
        """Counted computed-table insert with bound enforcement."""
        cache = self._cache
        cache[key] = value
        if len(cache) >= self._cache_limit:
            self._flush_cache()

    def stats(self) -> Dict[str, Optional[int]]:
        """Snapshot of engine counters (nodes, computed table, GC).

        Keys: ``nodes`` / ``peak_nodes`` / ``num_vars`` / ``unique_entries``
        (node store), ``cache_entries`` / ``cache_limit`` / ``cache_hits`` /
        ``cache_misses`` / ``cache_evictions`` / ``cache_flushes``
        (computed table), ``pinned_nodes`` / ``gc_runs`` /
        ``gc_reclaimed_nodes`` (garbage collection).
        """
        nodes = len(self._level)
        if nodes > self._peak_nodes:
            self._peak_nodes = nodes
        return {
            "nodes": nodes,
            "peak_nodes": self._peak_nodes,
            "num_vars": len(self._var_nodes),
            "unique_entries": len(self._unique),
            "cache_entries": len(self._cache),
            "cache_limit": self.cache_limit,
            "cache_hits": self._cache_hits,
            "cache_misses": self._cache_misses,
            "cache_evictions": self._cache_evictions,
            "cache_flushes": self._cache_flushes,
            "pinned_nodes": len(self._pins),
            "gc_runs": self._gc_runs,
            "gc_reclaimed_nodes": self._gc_reclaimed,
        }

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def pin(self, node: int) -> int:
        """Protect ``node`` (and its cone) across :meth:`collect`.

        Pins are counted: each :meth:`pin` needs a matching :meth:`unpin`.
        Returns ``node`` for call chaining.
        """
        if not 0 <= node < len(self._level):
            raise ValueError("cannot pin unknown node %d" % node)
        self._pins[node] = self._pins.get(node, 0) + 1
        return node

    def unpin(self, node: int) -> None:
        """Release one :meth:`pin` of ``node``."""
        count = self._pins.get(node)
        if count is None:
            raise ValueError("node %d is not pinned" % node)
        if count <= 1:
            del self._pins[node]
        else:
            self._pins[node] = count - 1

    def pin_count(self, node: int) -> int:
        """Number of outstanding pins on ``node``."""
        return self._pins.get(node, 0)

    def collect(self, extra_roots: Iterable[int] = ()) -> Dict[int, int]:
        """Mark-and-sweep: keep only nodes reachable from live roots.

        Live roots are the pinned nodes, the declared variables, and any
        ``extra_roots``.  Surviving nodes are compacted to the low end of
        the node arrays (creation order, hence topological order, is
        preserved) and the unique table is rebuilt.  The computed table is
        dropped wholesale — its keys mention dead ids.

        Returns the ``old id -> new id`` mapping for every surviving node;
        callers holding surviving roots **must** remap through it.  Ids of
        collected nodes are reused by later allocations, so stale handles
        are invalid after this call.
        """
        level, low, high = self._level, self._low, self._high
        count = len(level)
        if count > self._peak_nodes:
            self._peak_nodes = count
        marked = bytearray(count)
        marked[FALSE] = marked[TRUE] = 1
        stack = list(self._pins)
        stack.extend(extra_roots)
        stack.extend(self._var_nodes)
        while stack:
            node = stack.pop()
            if marked[node]:
                continue
            marked[node] = 1
            stack.append(low[node])
            stack.append(high[node])

        mapping: Dict[int, int] = {}
        new_level: List[int] = []
        new_low: List[int] = []
        new_high: List[int] = []
        for old_id in range(count):
            if not marked[old_id]:
                continue
            mapping[old_id] = len(new_level)
            new_level.append(level[old_id])
            if old_id <= TRUE:
                # Terminal self-loops keep their ids (0 and 1 are always
                # the first two marked nodes).
                new_low.append(old_id)
                new_high.append(old_id)
            else:
                # Children precede parents in creation order, so they are
                # already remapped when the parent is reached.
                new_low.append(mapping[low[old_id]])
                new_high.append(mapping[high[old_id]])
        self._level, self._low, self._high = new_level, new_low, new_high
        unique: Dict[Tuple[int, int, int], int] = {}
        for node in range(2, len(new_level)):
            unique[(new_level[node], new_low[node], new_high[node])] = node
        self._unique = unique
        self._cache.clear()
        self._var_nodes = [mapping[node] for node in self._var_nodes]
        self._pins = {mapping[node]: pins
                      for node, pins in self._pins.items()}
        # Fingerprints are content hashes (id-independent values), so
        # surviving entries stay valid under their remapped ids.
        self._fp_memo = {mapping[node]: fp
                         for node, fp in self._fp_memo.items()
                         if node in mapping}
        self._gc_runs += 1
        self._gc_reclaimed += count - len(new_level)
        return mapping

    # ------------------------------------------------------------------
    # Core Boolean connectives (explicit-stack apply)
    # ------------------------------------------------------------------
    def apply(self, op: str, f: int, g: int) -> int:
        """Generic binary connective: ``op`` is ``"and"``, ``"or"``, ``"xor"``."""
        try:
            tag = _APPLY_NAMES[op]
        except KeyError:
            raise ValueError("unknown apply op %r (expected one of %s)"
                             % (op, ", ".join(sorted(_APPLY_NAMES)))) from None
        return self._apply(tag, f, g)

    def _apply(self, op: int, f: int, g: int) -> int:
        """Iterative Shannon expansion of a commutative binary connective.

        Terminal cases resolve through the per-op rule triple in
        :data:`_TERMINAL_RULES`; everything else caches under
        ``(op, f, g)`` with ``f < g`` canonicalised.

        The walk is continuation-style: it descends straight into low
        cofactors, parking one ``[hi-pair, key, top]`` record per
        expansion on ``pending``, and bubbles results up in place —
        terminal pairs never touch the stack at all.
        """
        rules = _TERMINAL_RULES[op]
        # Fast head: resolve terminal or cached calls before binding the
        # dozen locals the full walk wants — most calls end here.
        if f == g:
            rule = rules[1]
            return f if rule == _OTHER else rule
        if f <= TRUE or g <= TRUE:
            if f <= TRUE:
                rule = rules[3] if f == TRUE else rules[2]
                other = g
            else:
                rule = rules[5] if g == TRUE else rules[4]
                other = f
            if rule == _OTHER:
                return other
            if rule == _NEG_OTHER:
                return self.not_(other)
            return rule
        if rules[0] and f > g:
            f, g = g, f
        cached = self._cache.get((op, f, g))
        if cached is not None:
            self._cache_hits += 1
            return cached
        la, lb = self._level[f], self._level[g]
        if (la if la < lb else lb) >= self._iter_floor:
            # Few enough levels below the top variable that plain
            # recursion cannot overflow: CPython makes that ~30% faster.
            return self._apply_rec(op, rules, f, g)
        (commutative, rule_same, a_false, a_true,
         b_false, b_true) = rules
        level, low, high = self._level, self._low, self._high
        unique = self._unique
        cache = self._cache
        unique_get = unique.get
        cache_get = cache.get
        limit = self._cache_limit
        hits = misses = 0
        # One flat 4-slot record per in-flight expansion:
        # [a1, b1, key, top] while the low half runs; the a1 slot is
        # overwritten with the low result (and b1 with -1) while the high
        # half runs.
        pending: list = []
        extend = pending.extend
        a, b = f, g
        while True:
            # -- descend: resolve (a, b) or park it and take the low half
            while True:
                if a == b:
                    result = a if rule_same == _OTHER else rule_same
                    break
                if a <= TRUE or b <= TRUE:
                    if a <= TRUE:
                        rule = a_true if a == TRUE else a_false
                        other = b
                    else:
                        rule = b_true if b == TRUE else b_false
                        other = a
                    if rule == _OTHER:
                        result = other
                    elif rule == _NEG_OTHER:
                        # Probe the NOT cache inline; the full call is
                        # only worth its setup cost on a genuine miss.
                        result = cache_get((_OP_NOT, other))
                        if result is None:
                            result = self.not_(other)
                        else:
                            hits += 1
                    else:
                        result = rule
                    break
                if commutative and a > b:
                    a, b = b, a
                key = (op, a, b)
                result = cache_get(key)
                if result is not None:
                    hits += 1
                    break
                misses += 1
                la, lb = level[a], level[b]
                if la <= lb:
                    top, a0, a1 = la, low[a], high[a]
                else:
                    top, a0, a1 = lb, a, a
                if lb <= la:
                    b0, b1 = low[b], high[b]
                else:
                    b0, b1 = b, b
                # Resolve a terminal high half inline (very common — e.g.
                # the FALSE absorber of AND) and park it pre-combined:
                # that half then never takes a descend trip at all.
                if a1 == b1:
                    hi_r = a1 if rule_same == _OTHER else rule_same
                elif a1 <= TRUE:
                    rule = a_true if a1 == TRUE else a_false
                    if rule == _OTHER:
                        hi_r = b1
                    elif rule == _NEG_OTHER:
                        hi_r = cache_get((_OP_NOT, b1))
                        if hi_r is None:
                            hi_r = self.not_(b1)
                        else:
                            hits += 1
                    else:
                        hi_r = rule
                elif b1 <= TRUE:
                    rule = b_true if b1 == TRUE else b_false
                    if rule == _OTHER:
                        hi_r = a1
                    elif rule == _NEG_OTHER:
                        hi_r = cache_get((_OP_NOT, a1))
                        if hi_r is None:
                            hi_r = self.not_(a1)
                        else:
                            hits += 1
                    else:
                        hi_r = rule
                else:
                    hi_r = -1
                if hi_r < 0:
                    extend((a1, b1, key, top))
                else:
                    extend((hi_r, -2, key, top))
                a, b = a0, b0
            # -- bubble: feed the result to the innermost pending record
            while True:
                if not pending:
                    self._cache_hits += hits
                    self._cache_misses += misses
                    return result
                b = pending[-3]
                if b == -2:
                    # High half was pre-resolved at expansion: combine now.
                    lo = result
                    result = pending[-4]
                    key = pending[-2]
                    top = pending[-1]
                    del pending[-4:]
                elif b != -1:
                    # Low half done: stash it, launch the high half.
                    a = pending[-4]
                    pending[-4] = result
                    pending[-3] = -1
                    break
                else:
                    lo = pending[-4]
                    key = pending[-2]
                    top = pending[-1]
                    del pending[-4:]
                if lo == result:
                    node = lo
                else:
                    ukey = (top, lo, result)
                    node = unique_get(ukey)
                    if node is None:
                        node = len(level)
                        level.append(top)
                        low.append(lo)
                        high.append(result)
                        unique[ukey] = node
                cache[key] = node
                if len(cache) >= limit:
                    self._flush_cache()
                result = node

    def _apply_rec(self, op: int, rules: Tuple, f: int, g: int) -> int:
        """Bounded-depth recursive twin of :meth:`_apply`.

        Only reached when the top variable has at most
        :data:`MAX_RECURSIVE_LEVELS` levels below it (checked by the
        caller), so the recursion cannot approach the interpreter limit.
        Same terminal-rule table, same cache keys, same counters.
        """
        if f == g:
            rule = rules[1]
            return f if rule == _OTHER else rule
        if f <= TRUE or g <= TRUE:
            if f <= TRUE:
                rule = rules[3] if f == TRUE else rules[2]
                other = g
            else:
                rule = rules[5] if g == TRUE else rules[4]
                other = f
            if rule == _OTHER:
                return other
            if rule == _NEG_OTHER:
                return self._not_rec(other)
            return rule
        if rules[0] and f > g:
            f, g = g, f
        key = (op, f, g)
        cache = self._cache
        node = cache.get(key)
        if node is not None:
            self._cache_hits += 1
            return node
        self._cache_misses += 1
        level = self._level
        la, lb = level[f], level[g]
        if la <= lb:
            top, a0, a1 = la, self._low[f], self._high[f]
        else:
            top, a0, a1 = lb, f, f
        if lb <= la:
            b0, b1 = self._low[g], self._high[g]
        else:
            b0, b1 = g, g
        lo = self._apply_rec(op, rules, a0, b0)
        hi = self._apply_rec(op, rules, a1, b1)
        node = lo if lo == hi else self._mk(top, lo, hi)
        cache[key] = node
        if len(cache) >= self._cache_limit:
            self._flush_cache()
        return node

    def _not_rec(self, f: int) -> int:
        """Bounded-depth recursive twin of :meth:`not_`."""
        if f <= TRUE:
            return TRUE - f
        key = (_OP_NOT, f)
        cache = self._cache
        node = cache.get(key)
        if node is not None:
            self._cache_hits += 1
            return node
        self._cache_misses += 1
        node = self._mk(self._level[f], self._not_rec(self._low[f]),
                        self._not_rec(self._high[f]))
        cache[key] = node
        if len(cache) >= self._cache_limit:
            self._flush_cache()
        return node

    def _ite_rec(self, f: int, g: int, h: int) -> int:
        """Bounded-depth recursive twin of the :meth:`ite` walk."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return self._not_rec(f)
        key = (_OP_ITE, f, g, h)
        cache = self._cache
        node = cache.get(key)
        if node is not None:
            self._cache_hits += 1
            return node
        self._cache_misses += 1
        level = self._level
        la, lb, lc = level[f], level[g], level[h]
        top = la if la < lb else lb
        if lc < top:
            top = lc
        if la == top:
            f0, f1 = self._low[f], self._high[f]
        else:
            f0 = f1 = f
        if lb == top:
            g0, g1 = self._low[g], self._high[g]
        else:
            g0 = g1 = g
        if lc == top:
            h0, h1 = self._low[h], self._high[h]
        else:
            h0 = h1 = h
        lo = self._ite_rec(f0, g0, h0)
        hi = self._ite_rec(f1, g1, h1)
        node = lo if lo == hi else self._mk(top, lo, hi)
        cache[key] = node
        if len(cache) >= self._cache_limit:
            self._flush_cache()
        return node

    def _cofactor_rec(self, f: int, var: int, value: bool) -> int:
        """Bounded-depth recursive twin of the :meth:`cofactor` walk."""
        lvl = self._level[f]
        if lvl > var:
            return f
        key = (_OP_COFACTOR, f, var, value)
        cache = self._cache
        node = cache.get(key)
        if node is not None:
            self._cache_hits += 1
            return node
        self._cache_misses += 1
        if lvl == var:
            node = self._high[f] if value else self._low[f]
        else:
            node = self._mk(lvl,
                            self._cofactor_rec(self._low[f], var, value),
                            self._cofactor_rec(self._high[f], var, value))
        cache[key] = node
        if len(cache) >= self._cache_limit:
            self._flush_cache()
        return node

    def _quant_rec(self, f: int, var_key: Tuple[int, ...], var_set,
                   max_var: int, cache_op: int, combine) -> int:
        """Bounded-depth recursive twin of the quantifier walk."""
        if f <= TRUE or self._level[f] > max_var:
            return f
        key = (cache_op, f, var_key)
        cache = self._cache
        node = cache.get(key)
        if node is not None:
            self._cache_hits += 1
            return node
        self._cache_misses += 1
        lvl = self._level[f]
        lo = self._quant_rec(self._low[f], var_key, var_set, max_var,
                             cache_op, combine)
        hi = self._quant_rec(self._high[f], var_key, var_set, max_var,
                             cache_op, combine)
        if lvl in var_set:
            node = combine(lo, hi)
        elif lo == hi:
            node = lo
        else:
            node = self._mk(lvl, lo, hi)
        cache[key] = node
        if len(cache) >= self._cache_limit:
            self._flush_cache()
        return node

    def not_(self, f: int) -> int:
        """Complement of ``f``."""
        if f <= TRUE:
            return TRUE - f
        cached = self._cache.get((_OP_NOT, f))
        if cached is not None:
            self._cache_hits += 1
            return cached
        if self._level[f] >= self._iter_floor:
            return self._not_rec(f)
        level, low, high = self._level, self._low, self._high
        unique = self._unique
        cache = self._cache
        unique_get = unique.get
        cache_get = cache.get
        limit = self._cache_limit
        hits = misses = 0
        # Continuation-style walk; one [hi, phase, key, lvl] record per
        # in-flight node, the hi slot re-used for the low result.
        pending: list = []
        extend = pending.extend
        node = f
        while True:
            while True:
                if node <= TRUE:
                    result = TRUE - node
                    break
                key = (_OP_NOT, node)
                result = cache_get(key)
                if result is not None:
                    hits += 1
                    break
                misses += 1
                extend((high[node], 0, key, level[node]))
                node = low[node]
            while True:
                if not pending:
                    self._cache_hits += hits
                    self._cache_misses += misses
                    return result
                if pending[-3] != -1:
                    node = pending[-4]
                    pending[-4] = result
                    pending[-3] = -1
                    break
                lo = pending[-4]
                key = pending[-2]
                lvl = pending[-1]
                del pending[-4:]
                if lo == result:
                    made = lo
                else:
                    ukey = (lvl, lo, result)
                    made = unique_get(ukey)
                    if made is None:
                        made = len(level)
                        level.append(lvl)
                        low.append(lo)
                        high.append(result)
                        unique[ukey] = made
                cache[key] = made
                if len(cache) >= limit:
                    self._flush_cache()
                result = made

    # The four wrappers below duplicate their op's terminal rules and the
    # cache probe so that the overwhelmingly common resolved-in-O(1) calls
    # pay a single Python call; only cold walks enter _apply.

    def and_(self, f: int, g: int) -> int:
        """Conjunction of ``f`` and ``g``."""
        if f == g or g == TRUE:
            return f
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if f > g:
            f, g = g, f
        cached = self._cache.get((_OP_AND, f, g))
        if cached is not None:
            self._cache_hits += 1
            return cached
        # Literal-above fast path: conjoining a literal onto a function
        # below it (the cube/minterm construction pattern) is one _mk.
        lo, hi = self._low[f], self._high[f]
        if lo <= TRUE and hi <= TRUE and lo != hi \
                and self._level[f] < self._level[g]:
            if hi == TRUE:
                return self._mk(self._level[f], FALSE, g)
            return self._mk(self._level[f], g, FALSE)
        return self._apply(_OP_AND, f, g)

    def or_(self, f: int, g: int) -> int:
        """Disjunction of ``f`` and ``g``."""
        if f == g or g == FALSE:
            return f
        if f == TRUE or g == TRUE:
            return TRUE
        if f == FALSE:
            return g
        if f > g:
            f, g = g, f
        cached = self._cache.get((_OP_OR, f, g))
        if cached is not None:
            self._cache_hits += 1
            return cached
        # Literal-above fast path, dual of the one in and_().
        lo, hi = self._low[f], self._high[f]
        if lo <= TRUE and hi <= TRUE and lo != hi \
                and self._level[f] < self._level[g]:
            if hi == TRUE:
                return self._mk(self._level[f], g, TRUE)
            return self._mk(self._level[f], TRUE, g)
        return self._apply(_OP_OR, f, g)

    def xor_(self, f: int, g: int) -> int:
        """Exclusive-or of ``f`` and ``g``."""
        if f == g:
            return FALSE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == TRUE:
            return self.not_(g)
        if g == TRUE:
            return self.not_(f)
        if f > g:
            f, g = g, f
        cached = self._cache.get((_OP_XOR, f, g))
        if cached is not None:
            self._cache_hits += 1
            return cached
        return self._apply(_OP_XOR, f, g)

    def xnor_(self, f: int, g: int) -> int:
        """Equivalence (XNOR) of ``f`` and ``g``."""
        return self.not_(self.xor_(f, g))

    def implies(self, f: int, g: int) -> bool:
        """Decide the inclusion ``f <= g`` (i.e. ``f & ~g == 0``)."""
        return self.diff(f, g) == FALSE

    def diff(self, f: int, g: int) -> int:
        """Set difference ``f & ~g`` (a fused apply; ``~g`` is never built)."""
        if f == g or f == FALSE or g == TRUE:
            return FALSE
        if g == FALSE:
            return f
        if f == TRUE:
            return self.not_(g)
        cached = self._cache.get((_OP_ANDNOT, f, g))
        if cached is not None:
            self._cache_hits += 1
            return cached
        return self._apply(_OP_ANDNOT, f, g)

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f & g) | (~f & h)``."""
        level, low, high = self._level, self._low, self._high
        # Entry reductions.  Constant (or guard-equal) legs become binary
        # applies: smaller keys, results shared with direct and/or/diff
        # calls through the same computed table.
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE or f == g:
            return self._apply(_OP_OR, f, h)                # f | h
        if g == FALSE:
            return self._apply(_OP_ANDNOT, h, f)            # ~f & h
        if h == FALSE or f == h:
            return self._apply(_OP_AND, f, g)               # f & g
        if h == TRUE:
            return self.not_(self._apply(_OP_ANDNOT, f, g))  # ~f | g
        # The dominant in-repo shape (isop / gencof / safemin rebuilds):
        # a plain variable guard above both legs needs no traversal.
        top = level[f]
        if (low[f] == FALSE and high[f] == TRUE
                and level[g] > top and level[h] > top):
            return self._mk(top, h, g)
        cached = self._cache.get((_OP_ITE, f, g, h))
        if cached is not None:
            self._cache_hits += 1
            return cached
        lg, lh = level[g], level[h]
        if lg < top:
            top = lg
        if lh < top:
            top = lh
        if top >= self._iter_floor:
            return self._ite_rec(f, g, h)
        unique = self._unique
        cache = self._cache
        unique_get = unique.get
        cache_get = cache.get
        limit = self._cache_limit
        hits = misses = 0
        # Continuation-style walk; one [a1, b1, c1, key, top] record per
        # in-flight expansion, the a1/c1 slots re-used for the low result
        # and the in-flight marker.
        pending: list = []
        extend = pending.extend
        a, b, c = f, g, h
        while True:
            while True:
                if a == TRUE:
                    result = b
                    break
                if a == FALSE:
                    result = c
                    break
                if b == c:
                    result = b
                    break
                if b == TRUE and c == FALSE:
                    result = a
                    break
                if b == FALSE and c == TRUE:
                    result = cache_get((_OP_NOT, a))
                    if result is None:
                        result = self.not_(a)
                    else:
                        hits += 1
                    break
                key = (_OP_ITE, a, b, c)
                result = cache_get(key)
                if result is not None:
                    hits += 1
                    break
                misses += 1
                la, lb, lc = level[a], level[b], level[c]
                top = la if la < lb else lb
                if lc < top:
                    top = lc
                if la == top:
                    a0, a1 = low[a], high[a]
                else:
                    a0 = a1 = a
                if lb == top:
                    b0, b1 = low[b], high[b]
                else:
                    b0 = b1 = b
                if lc == top:
                    c0, c1 = low[c], high[c]
                else:
                    c0 = c1 = c
                extend((a1, b1, c1, key, top))
                a, b, c = a0, b0, c0
            while True:
                if not pending:
                    self._cache_hits += hits
                    self._cache_misses += misses
                    return result
                c = pending[-3]
                if c != -1:
                    # Low half done: stash it, launch the high half.
                    a = pending[-5]
                    b = pending[-4]
                    pending[-5] = result
                    pending[-3] = -1
                    break
                lo = pending[-5]
                key = pending[-2]
                top = pending[-1]
                del pending[-5:]
                if lo == result:
                    node = lo
                else:
                    ukey = (top, lo, result)
                    node = unique_get(ukey)
                    if node is None:
                        node = len(level)
                        level.append(top)
                        low.append(lo)
                        high.append(result)
                        unique[ukey] = node
                cache[key] = node
                if len(cache) >= limit:
                    self._flush_cache()
                result = node

    # ------------------------------------------------------------------
    # Cofactors and quantification
    # ------------------------------------------------------------------
    def cofactor(self, f: int, var: int, value: bool) -> int:
        """Restrict variable ``var`` of ``f`` to ``value`` (Definition 6.2)."""
        level, low, high = self._level, self._low, self._high
        if level[f] > var:
            return f
        cached = self._cache.get((_OP_COFACTOR, f, var, value))
        if cached is not None:
            self._cache_hits += 1
            return cached
        if level[f] >= self._iter_floor:
            return self._cofactor_rec(f, var, value)
        unique = self._unique
        cache = self._cache
        unique_get = unique.get
        cache_get = cache.get
        limit = self._cache_limit
        hits = misses = 0
        # Continuation-style walk; one [hi, phase, key, lvl] record per
        # in-flight node, the hi slot re-used for the low result.
        pending: list = []
        extend = pending.extend
        node = f
        while True:
            while True:
                lvl = level[node]
                if lvl > var:
                    result = node
                    break
                key = (_OP_COFACTOR, node, var, value)
                result = cache_get(key)
                if result is not None:
                    hits += 1
                    break
                misses += 1
                if lvl == var:
                    result = high[node] if value else low[node]
                    cache[key] = result
                    if len(cache) >= limit:
                        self._flush_cache()
                    break
                extend((high[node], 0, key, lvl))
                node = low[node]
            while True:
                if not pending:
                    self._cache_hits += hits
                    self._cache_misses += misses
                    return result
                if pending[-3] != -1:
                    node = pending[-4]
                    pending[-4] = result
                    pending[-3] = -1
                    break
                lo = pending[-4]
                key = pending[-2]
                lvl = pending[-1]
                del pending[-4:]
                if lo == result:
                    made = lo
                else:
                    ukey = (lvl, lo, result)
                    made = unique_get(ukey)
                    if made is None:
                        made = len(level)
                        level.append(lvl)
                        low.append(lo)
                        high.append(result)
                        unique[ukey] = made
                cache[key] = made
                if len(cache) >= limit:
                    self._flush_cache()
                result = made

    def restrict_cube(self, f: int, assignment: Dict[int, bool]) -> int:
        """Restrict several variables at once; ``assignment`` maps var->value."""
        result = f
        for var, value in sorted(assignment.items()):
            result = self.cofactor(result, var, value)
        return result

    def exists(self, f: int, variables: Iterable[int]) -> int:
        """Existential abstraction of ``variables`` from ``f``."""
        var_key = self._quant_key(variables)
        if not var_key:
            return f
        return self._quant_iter(f, var_key, _OP_EXISTS, _OP_OR)

    def forall(self, f: int, variables: Iterable[int]) -> int:
        """Universal abstraction of ``variables`` from ``f``.

        Runs the same walk as :meth:`exists` with an AND combine instead
        of complementing twice around an existential abstraction.
        """
        var_key = self._quant_key(variables)
        if not var_key:
            return f
        return self._quant_iter(f, var_key, _OP_FORALL, _OP_AND)

    @staticmethod
    def _quant_key(variables: Iterable[int]) -> Tuple[int, ...]:
        return tuple(sorted(set(variables)))

    def _quant_iter(self, f: int, var_key: Tuple[int, ...],
                    cache_op: int, combine_op: int) -> int:
        """Explicit-stack quantifier abstraction.

        Quantified levels combine children with ``combine_op`` (OR for
        exists, AND for forall); other levels rebuild the node.
        Subresults cache under ``(cache_op, node, vars)``.
        """
        max_var = var_key[-1]
        if f <= TRUE or self._level[f] > max_var:
            return f
        cached = self._cache.get((cache_op, f, var_key))
        if cached is not None:
            self._cache_hits += 1
            return cached
        var_set = frozenset(var_key)
        if self._level[f] >= self._iter_floor:
            return self._quant_rec(
                f, var_key, var_set, max_var, cache_op,
                self.or_ if combine_op == _OP_OR else self.and_)
        level, low, high = self._level, self._low, self._high
        unique = self._unique
        cache = self._cache
        unique_get = unique.get
        cache_get = cache.get
        limit = self._cache_limit
        # The wrapper (cheap fast head) beats _apply's full setup for the
        # mostly-warm combine calls at quantified levels.
        combine = self.or_ if combine_op == _OP_OR else self.and_
        hits = misses = 0
        # Continuation-style walk; one [hi, phase, key, lvl] record per
        # in-flight node, the hi slot re-used for the low result.
        pending: list = []
        extend = pending.extend
        node = f
        while True:
            while True:
                if node <= TRUE or level[node] > max_var:
                    result = node
                    break
                key = (cache_op, node, var_key)
                result = cache_get(key)
                if result is not None:
                    hits += 1
                    break
                misses += 1
                extend((high[node], 0, key, level[node]))
                node = low[node]
            while True:
                if not pending:
                    self._cache_hits += hits
                    self._cache_misses += misses
                    return result
                if pending[-3] != -1:
                    node = pending[-4]
                    pending[-4] = result
                    pending[-3] = -1
                    break
                lo = pending[-4]
                key = pending[-2]
                lvl = pending[-1]
                del pending[-4:]
                if lvl in var_set:
                    made = combine(lo, result)
                elif lo == result:
                    made = lo
                else:
                    ukey = (lvl, lo, result)
                    made = unique_get(ukey)
                    if made is None:
                        made = len(level)
                        level.append(lvl)
                        low.append(lo)
                        high.append(result)
                        unique[ukey] = made
                cache[key] = made
                if len(cache) >= limit:
                    self._flush_cache()
                result = made

    # ------------------------------------------------------------------
    # Composition and permutation
    # ------------------------------------------------------------------
    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` inside ``f``."""
        if self._level[f] > var:
            return f
        return self.ite(g, self.cofactor(f, var, True),
                        self.cofactor(f, var, False))

    def _rebuild(self, f: int, guard_of_level) -> int:
        """Bottom-up reconstruction of ``f`` with substituted guards.

        ``guard_of_level(level)`` returns the node steering each rebuilt
        branch; shared sub-DAGs are rebuilt once through a per-call memo.
        Backbone of :meth:`vector_compose` and :meth:`permute`.
        """
        memo: Dict[int, int] = {}
        low, high = self._low, self._high
        tasks: list = [f, False]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        while tasks:
            if pop():
                node = pop()
                hi = results.pop()
                lo = results.pop()
                result = self.ite(guard_of_level(self._level[node]), hi, lo)
                memo[node] = result
                results.append(result)
                continue
            node = pop()
            if node <= TRUE:
                results.append(node)
                continue
            hit = memo.get(node)
            if hit is not None:
                results.append(hit)
                continue
            push(node)
            push(True)
            push(high[node])
            push(False)
            push(low[node])
            push(False)
        return results[0]

    def vector_compose(self, f: int, substitution: Dict[int, int]) -> int:
        """Substitute several variables simultaneously.

        ``substitution`` maps variable index to replacement node.  The
        substitution is simultaneous: replacement functions are *not*
        re-substituted.  This is implemented by a single bottom-up rebuild.
        """
        if not substitution:
            return f
        sub_key = tuple(sorted(substitution.items()))
        key = (_OP_COMPOSE, f, sub_key)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        var_nodes = self._var_nodes

        def guard(level: int) -> int:
            node = substitution.get(level)
            return var_nodes[level] if node is None else node

        result = self._rebuild(f, guard)
        self._cache_put(key, result)
        return result

    def permute(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variables of ``f`` according to ``mapping`` (var -> var).

        The mapping must be injective on the support of ``f``; variables not
        mentioned are left in place.
        """
        if not mapping:
            return f
        map_key = tuple(sorted(mapping.items()))
        key = (_OP_PERMUTE, f, map_key)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        var_nodes = self._var_nodes

        def guard(level: int) -> int:
            return var_nodes[mapping.get(level, level)]

        result = self._rebuild(f, guard)
        self._cache_put(key, result)
        return result

    def swap_vars(self, f: int, var_a: int, var_b: int) -> int:
        """Exchange two variables of ``f`` (used by symmetry detection)."""
        return self.permute(f, {var_a: var_b, var_b: var_a})

    # ------------------------------------------------------------------
    # Structural fingerprints
    # ------------------------------------------------------------------
    def _fp_walk(self, f: int, memo: Dict[int, int],
                 var_map: Optional[Dict[int, int]]) -> int:
        """Post-order fingerprint walk shared by every fingerprint API.

        ``memo`` must contain the terminal seeds; ``var_map`` (level ->
        level) is applied before mixing, ``None`` meaning identity.
        Being the single copy of the walk is deliberate: renamed and
        unrenamed fingerprints must come from the same algorithm.
        """
        level, low, high = self._level, self._low, self._high
        map_get = var_map.get if var_map is not None else None
        stack = [f]
        push = stack.append
        while stack:
            node = stack[-1]
            if node in memo:
                stack.pop()
                continue
            lo, hi = low[node], high[node]
            lo_fp = memo.get(lo)
            hi_fp = memo.get(hi)
            if lo_fp is None:
                push(lo)
            if hi_fp is None:
                push(hi)
            if lo_fp is not None and hi_fp is not None:
                stack.pop()
                lvl = level[node]
                if map_get is not None:
                    lvl = map_get(lvl, lvl)
                memo[node] = _fp_mix(lvl, lo_fp, hi_fp)
        return memo[f]

    def fingerprint(self, f: int) -> int:
        """64-bit canonical content hash of the function ``f``.

        Two nodes have equal fingerprints exactly when their reduced
        BDDs are structurally identical over the *same* variable levels
        (modulo the vanishing 64-bit collision probability) — including
        nodes living in **different managers**, as long as those
        managers assign the function's variables the same levels.  The
        hash mixes only levels and child hashes with fixed constants,
        so it is stable across processes and interpreter runs (unlike
        ``hash()``).  Results are memoised per manager and survive
        :meth:`collect` (remapped alongside the node ids).
        """
        hit = self._fp_memo.get(f)
        if hit is not None:
            return hit
        return self._fp_walk(f, self._fp_memo, None)

    def fingerprints(self, functions: Sequence[int],
                     var_map: Optional[Dict[int, int]] = None
                     ) -> Tuple[int, ...]:
        """Fingerprints of several functions under one level renaming.

        ``var_map`` maps variable levels to replacement levels before
        mixing (it must be order-preserving on the combined support for
        the result to describe a realisable BDD; levels not mapped keep
        their own value).  With a shared renaming, functions that are
        identical *up to that renaming* — e.g. the same structure
        shifted to a different support — hash identically.  Uncached:
        renamed walks depend on the map, so results are memoised only
        for the duration of the call.  ``var_map=None`` delegates to the
        cached :meth:`fingerprint`.
        """
        if var_map is None:
            return tuple(self.fingerprint(f) for f in functions)
        memo: Dict[int, int] = {FALSE: _FP_FALSE, TRUE: _FP_TRUE}
        return tuple(self._fp_walk(f, memo, var_map)
                     for f in functions)

    def support_fingerprint(self, f: int) -> int:
        """Fingerprint of ``f`` with its support renumbered to ``0..k-1``.

        The canonicalisation is order-preserving (sorted support ranks),
        so semantically identical functions whose supports differ only
        by a level *shift or gap pattern* — not a reordering — hash
        identically.  Convenience form of the normalisation the
        cross-layer memo signatures apply: ``Isf.signature()`` and
        ``BooleanRelation.signature()`` run :meth:`fingerprints` with
        rank maps of their own (joint over several functions, or
        role-tagged), this method is the single-function case.
        """
        ranks = {var: rank for rank, var in enumerate(self.support(f))}
        return self.fingerprints((f,), ranks)[0]

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    def support(self, f: int) -> Tuple[int, ...]:
        """Return the sorted tuple of variables ``f`` depends on."""
        seen = set()
        variables = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            variables.add(self._level[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return tuple(sorted(variables))

    def size(self, f: int) -> int:
        """Number of internal (non-terminal) DAG nodes of ``f``.

        This is the paper's BDD-size cost metric (Section 7.3); the constant
        functions have size 0.
        """
        seen = set()
        stack = [f]
        count = 0
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            count += 1
            stack.append(self._low[node])
            stack.append(self._high[node])
        return count

    def shared_size(self, functions: Sequence[int]) -> int:
        """DAG node count of a set of functions with sharing."""
        seen = set()
        stack = list(functions)
        count = 0
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            count += 1
            stack.append(self._low[node])
            stack.append(self._high[node])
        return count

    def sat_count(self, f: int, variables: Sequence[int]) -> int:
        """Number of satisfying assignments of ``f`` over ``variables``.

        ``variables`` must be a superset of ``support(f)``.
        """
        total = len(set(variables))
        # With count(TRUE) = 2^total, halving once per internal node on a
        # path leaves 2^(total - k) assignments for a path with k literals,
        # which sums to the exact model count; skipped levels need no
        # special handling.
        memo: Dict[int, int] = {FALSE: 0, TRUE: 1 << total}
        low, high = self._low, self._high
        stack = [f]
        while stack:
            node = stack[-1]
            if node in memo:
                stack.pop()
                continue
            lo, hi = low[node], high[node]
            ready = True
            if lo not in memo:
                stack.append(lo)
                ready = False
            if hi not in memo:
                stack.append(hi)
                ready = False
            if ready:
                stack.pop()
                memo[node] = (memo[lo] + memo[hi]) >> 1
        return memo[f]

    def eval(self, f: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate ``f`` under a (complete-on-support) variable assignment."""
        node = f
        while node > TRUE:
            if assignment[self._level[node]]:
                node = self._high[node]
            else:
                node = self._low[node]
        return node == TRUE

    # ------------------------------------------------------------------
    # Cube construction helpers
    # ------------------------------------------------------------------
    def cube(self, assignment: Dict[int, bool]) -> int:
        """Build the conjunction of literals described by ``assignment``."""
        result = TRUE
        for var in sorted(assignment, reverse=True):
            literal = (self._var_nodes[var] if assignment[var]
                       else self.nvar(var))
            result = self.and_(literal, result)
        return result

    def minterm(self, variables: Sequence[int], value: int) -> int:
        """Build the minterm of ``variables`` encoded by integer ``value``.

        Bit ``i`` of ``value`` gives the polarity of ``variables[i]``
        (bit 0 == first variable in the sequence).
        """
        assignment = {var: bool((value >> i) & 1)
                      for i, var in enumerate(variables)}
        return self.cube(assignment)

    def from_minterms(self, variables: Sequence[int],
                      values: Iterable[int]) -> int:
        """Disjunction of :meth:`minterm` over ``values``."""
        result = FALSE
        for value in values:
            result = self.or_(result, self.minterm(variables, value))
        return result

    def minterms(self, f: int, variables: Sequence[int]) -> Iterator[int]:
        """Yield the integer encodings of all minterms of ``f``.

        ``variables`` must cover the support of ``f``; bit ``i`` of each
        yielded value is the polarity of ``variables[i]``.
        """
        n = len(variables)
        if n == 0:
            if f == TRUE:
                yield 0
            return
        position = {var: i for i, var in enumerate(variables)}
        var_levels = sorted(position)
        depth = len(var_levels)
        level, low, high = self._level, self._low, self._high
        stack = [(f, 0, 0)]
        while stack:
            node, index, acc = stack.pop()
            if node == FALSE:
                continue
            if index == depth:
                yield acc
                continue
            var = var_levels[index]
            if node > TRUE and level[node] == var:
                lo, hi = low[node], high[node]
            else:
                lo = hi = node
            # Low branch first (matches the recursive enumeration order).
            stack.append((hi, index + 1, acc | (1 << position[var])))
            stack.append((lo, index + 1, acc))

    # ------------------------------------------------------------------
    # Two-level synthesis
    # ------------------------------------------------------------------

    def isop(self, lower: int,
             upper: int) -> Tuple[List[Dict[int, bool]], int]:
        """Irredundant SOP cover of a function in ``[lower, upper]``.

        Part of the :class:`~repro.bdd.backend.FunctionBackend`
        protocol; delegates to the Minato-Morreale implementation in
        :mod:`repro.bdd.isop`.
        """
        from .isop import isop as _isop
        return _isop(self, lower, upper)
