"""Safe BDD minimisation within a function interval.

Stand-in for *LICompact* (Hong, Beerel, Burch, McMillan, "Safe BDD
minimization using don't cares", DAC'97 — reference [19] of the paper).

The published LICompact algorithm identifies compaction opportunities via
"linear inequalities" over node reachability.  Re-deriving it exactly is out
of scope; what Table 1 of the paper exercises is its *contract*:

* the result stays inside the care interval ``[lower, upper]``;
* minimisation is *safe* — the result is never larger than the input
  representative.

``squeeze`` below provides that contract through two local rules applied
top-down, both classical safe-minimisation moves:

1. **variable elimination** — if the interval ``[low_0 | low_1,
   upp_0 & upp_1]`` is non-empty, the top variable is non-essential and is
   dropped entirely;
2. **sibling substitution** — if one branch's result also fits the other
   branch's interval, reuse it for both, which merges the children.

Both rules only ever merge nodes, hence the safety guarantee.  The
substitution is documented in DESIGN.md (Section 4).  The walk runs an
explicit frame stack, so intervals of any BDD depth are handled under the
default interpreter recursion limit.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .manager import FALSE, TRUE, BddManager

# Phases of the explicit-stack walk.
_EXPAND = 0     # inspect an interval, decide which rule applies
_COMBINE = 1    # both branch results done, try sibling substitution
_STORE = 2      # rule-1 passthrough: cache the merged interval's result


def squeeze(mgr: BddManager, lower: int, upper: int) -> int:
    """Return ``f`` with ``lower <= f <= upper`` and a small BDD.

    Raises ``ValueError`` if the interval is empty (``lower`` not contained
    in ``upper``).
    """
    if not mgr.implies(lower, upper):
        raise ValueError("squeeze requires lower <= upper")
    cache: Dict[Tuple[int, int], int] = {}
    results: List[int] = []
    tasks: List[tuple] = [(_EXPAND, lower, upper)]
    while tasks:
        frame = tasks.pop()
        phase = frame[0]
        if phase == _EXPAND:
            low, upp = frame[1], frame[2]
            if low == upp:
                results.append(low)
                continue
            if low == FALSE and upp == TRUE:
                # Unconstrained interval: pick the smaller constant, FALSE.
                results.append(FALSE)
                continue
            if upp == FALSE:
                results.append(FALSE)
                continue
            if low == TRUE:
                results.append(TRUE)
                continue
            key = (low, upp)
            hit = cache.get(key)
            if hit is not None:
                results.append(hit)
                continue
            var = min(mgr.level(low), mgr.level(upp))
            low0 = mgr.cofactor(low, var, False)
            low1 = mgr.cofactor(low, var, True)
            upp0 = mgr.cofactor(upp, var, False)
            upp1 = mgr.cofactor(upp, var, True)

            merged_low = mgr.or_(low0, low1)
            merged_upp = mgr.and_(upp0, upp1)
            if mgr.implies(merged_low, merged_upp):
                # Rule 1: the variable is non-essential over this interval.
                tasks.append((_STORE, key))
                tasks.append((_EXPAND, merged_low, merged_upp))
            else:
                tasks.append((_COMBINE, key, var,
                              (low0, low1, upp0, upp1)))
                tasks.append((_EXPAND, low1, upp1))
                tasks.append((_EXPAND, low0, upp0))
        elif phase == _COMBINE:
            key, var = frame[1], frame[2]
            low0, low1, upp0, upp1 = frame[3]
            r1 = results.pop()
            r0 = results.pop()
            # Rule 2: sibling substitution in both directions.
            if r0 != r1:
                if mgr.implies(low1, r0) and mgr.implies(r0, upp1):
                    r1 = r0
                elif mgr.implies(low0, r1) and mgr.implies(r1, upp0):
                    r0 = r1
            result = mgr.ite(mgr.var(var), r1, r0)
            cache[key] = result
            results.append(result)
        else:  # _STORE: the merged interval's result is also this one's.
            cache[frame[1]] = results[-1]

    result = results[0]
    # Enforce the safety guarantee: both interval endpoints are themselves
    # valid implementations, so the returned function is never larger than
    # the smaller of the two.
    candidates = [(mgr.size(result), result),
                  (mgr.size(lower), lower),
                  (mgr.size(upper), upper)]
    candidates.sort(key=lambda pair: pair[0])
    return candidates[0][1]


def minimize_with_squeeze(mgr: BddManager, on: int, dc: int) -> int:
    """Pick an implementation of the ISF ``[on, on+dc]`` via :func:`squeeze`."""
    return squeeze(mgr, on, mgr.or_(on, dc))
