"""Safe BDD minimisation within a function interval.

Stand-in for *LICompact* (Hong, Beerel, Burch, McMillan, "Safe BDD
minimization using don't cares", DAC'97 — reference [19] of the paper).

The published LICompact algorithm identifies compaction opportunities via
"linear inequalities" over node reachability.  Re-deriving it exactly is out
of scope; what Table 1 of the paper exercises is its *contract*:

* the result stays inside the care interval ``[lower, upper]``;
* minimisation is *safe* — the result is never larger than the input
  representative.

``squeeze`` below provides that contract through two local rules applied
top-down, both classical safe-minimisation moves:

1. **variable elimination** — if the interval ``[low_0 | low_1,
   upp_0 & upp_1]`` is non-empty, the top variable is non-essential and is
   dropped entirely;
2. **sibling substitution** — if one branch's result also fits the other
   branch's interval, reuse it for both, which merges the children.

Both rules only ever merge nodes, hence the safety guarantee.  The
substitution is documented in DESIGN.md (Section 4).
"""

from __future__ import annotations

from typing import Dict, Tuple

from .manager import FALSE, TRUE, BddManager


def squeeze(mgr: BddManager, lower: int, upper: int) -> int:
    """Return ``f`` with ``lower <= f <= upper`` and a small BDD.

    Raises ``ValueError`` if the interval is empty (``lower`` not contained
    in ``upper``).
    """
    if not mgr.implies(lower, upper):
        raise ValueError("squeeze requires lower <= upper")
    cache: Dict[Tuple[int, int], int] = {}

    def rec(low: int, upp: int) -> int:
        if low == upp:
            return low
        if low == FALSE and upp == TRUE:
            # Unconstrained interval: pick the smaller constant, FALSE.
            return FALSE
        if upp == FALSE:
            return FALSE
        if low == TRUE:
            return TRUE
        key = (low, upp)
        hit = cache.get(key)
        if hit is not None:
            return hit
        var = min(mgr.level(low), mgr.level(upp))
        low0 = mgr.cofactor(low, var, False)
        low1 = mgr.cofactor(low, var, True)
        upp0 = mgr.cofactor(upp, var, False)
        upp1 = mgr.cofactor(upp, var, True)

        merged_low = mgr.or_(low0, low1)
        merged_upp = mgr.and_(upp0, upp1)
        if mgr.implies(merged_low, merged_upp):
            # Rule 1: the variable is non-essential over this interval.
            result = rec(merged_low, merged_upp)
        else:
            r0 = rec(low0, upp0)
            r1 = rec(low1, upp1)
            # Rule 2: sibling substitution in both directions.
            if r0 != r1:
                if mgr.implies(low1, r0) and mgr.implies(r0, upp1):
                    r1 = r0
                elif mgr.implies(low0, r1) and mgr.implies(r1, upp0):
                    r0 = r1
            result = mgr.ite(mgr.var(var), r1, r0)
        cache[key] = result
        return result

    result = rec(lower, upper)
    # Enforce the safety guarantee: both interval endpoints are themselves
    # valid implementations, so the returned function is never larger than
    # the smaller of the two.
    candidates = [(mgr.size(result), result),
                  (mgr.size(lower), lower),
                  (mgr.size(upper), upper)]
    candidates.sort(key=lambda pair: pair[0])
    return candidates[0][1]


def minimize_with_squeeze(mgr: BddManager, on: int, dc: int) -> int:
    """Pick an implementation of the ISF ``[on, on+dc]`` via :func:`squeeze`."""
    return squeeze(mgr, on, mgr.or_(on, dc))
