"""Named registries for pluggable solver components.

The declarative :class:`~repro.api.request.SolveRequest` names its cost
function and ISF minimiser by *string key* so a solve can be described as
pure data (JSON), replayed, batched, and shipped to worker processes.
This module owns the three registries behind those keys:

* the **cost registry**, promoted from the old ``repro.cli.COSTS`` table
  (paper Section 7.3 objectives plus the shared-DAG variant);
* the **minimiser registry**, wrapping the same dict as
  :data:`repro.core.minimize.MINIMIZERS` (paper Section 7.5 / Table 1) so
  registrations made here are visible to :func:`repro.core.get_minimizer`
  and vice versa;
* the **strategy registry**, wrapping
  :data:`repro.core.explore.STRATEGIES` (the exploration disciplines of
  the solver loop: ``bfs``, ``dfs``, ``best-first``, ``beam``), kept in
  sync with :func:`repro.core.make_strategy` the same way.

Users plug in custom objectives without touching ``repro.core``::

    from repro.api import register_cost

    @register_cost("support-balance")
    def support_balance(mgr, functions):
        supports = [len(mgr.support(f)) for f in functions]
        return float(sum(supports) + 4 * (max(supports) - min(supports)))

    request = SolveRequest(relation=..., cost="support-balance")
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple, TypeVar

from ..core.cost import (CostFunction, bdd_size_cost, bdd_size_squared_cost,
                         cube_count_cost, literal_count_cost,
                         shared_bdd_size_cost)
from ..core.explore import STRATEGIES, StrategyFactory, suggest
from ..core.minimize import MINIMIZERS, IsfMinimizer

T = TypeVar("T")


class Registry:
    """A named table of interchangeable components.

    A thin mapping wrapper whose value is the error ergonomics (unknown
    names list the alternatives) and the decorator-or-direct ``register``
    API.  A registry may *back onto* an existing dict — mutations are then
    visible to every holder of that dict, which is how the minimiser
    registry stays in sync with :mod:`repro.core.minimize`.
    """

    def __init__(self, kind: str,
                 backing: Optional[Dict[str, T]] = None) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = backing if backing is not None else {}

    # -- lookup --------------------------------------------------------
    def get(self, name: str) -> T:
        """Resolve ``name``; unknown names raise a did-you-mean error
        listing the valid choices."""
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError("unknown %s %r%s (registered: %s)"
                           % (self.kind, name,
                              suggest(name, self._entries),
                              ", ".join(sorted(self._entries)) or "none")
                           ) from None

    def name_of(self, obj: T) -> Optional[str]:
        """Reverse lookup: the registered name of ``obj``, or ``None``."""
        for name, entry in self._entries.items():
            if entry is obj:
                return name
        return None

    def names(self) -> List[str]:
        return sorted(self._entries)

    def items(self) -> List[Tuple[str, T]]:
        return sorted(self._entries.items())

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    # -- registration --------------------------------------------------
    def register(self, name: str, obj: Optional[T] = None, *,
                 overwrite: bool = False):
        """Register ``obj`` under ``name``; usable as a decorator.

        ``registry.register("k", f)`` registers directly and returns ``f``;
        ``@registry.register("k")`` registers the decorated callable.
        Re-registering an existing name requires ``overwrite=True``.
        """
        def add(entry: T) -> T:
            if not overwrite and name in self._entries:
                raise ValueError("%s %r is already registered "
                                 "(pass overwrite=True to replace)"
                                 % (self.kind, name))
            self._entries[name] = entry
            return entry

        return add if obj is None else add(obj)

    def unregister(self, name: str) -> None:
        """Remove a registration (mainly for tests tearing down plugins)."""
        self._entries.pop(name, None)


#: CLI/registry names for the paper Section 7.3 cost functions.  This is
#: the promotion of the old ``repro.cli.COSTS`` table; ``cli`` re-exports
#: it for backwards compatibility.
COSTS: Dict[str, CostFunction] = {
    "size": bdd_size_cost,
    "size2": bdd_size_squared_cost,
    "cubes": cube_count_cost,
    "literals": literal_count_cost,
    "shared": shared_bdd_size_cost,
}

#: The registry of cost objectives, keyed by request-level name.
cost_registry: Registry = Registry("cost function", COSTS)

#: The registry of ISF minimisers.  Backs onto the *same* dict as
#: :data:`repro.core.minimize.MINIMIZERS` so the two stay consistent.
minimizer_registry: Registry = Registry("minimizer", MINIMIZERS)

#: The registry of exploration strategies.  Backs onto the *same* dict
#: as :data:`repro.core.explore.STRATEGIES` so strategies registered
#: here are resolvable by :class:`repro.core.BrelOptions` and the CLI.
strategy_registry: Registry = Registry("strategy", STRATEGIES)


def register_cost(name: str, func: Optional[CostFunction] = None, *,
                  overwrite: bool = False):
    """Register a custom cost objective (decorator or direct call)."""
    return cost_registry.register(name, func, overwrite=overwrite)


def register_minimizer(name: str, func: Optional[IsfMinimizer] = None, *,
                       overwrite: bool = False):
    """Register a custom ISF minimiser (decorator or direct call)."""
    return minimizer_registry.register(name, func, overwrite=overwrite)


def register_strategy(name: str, factory: Optional[StrategyFactory] = None,
                      *, overwrite: bool = False):
    """Register an exploration-strategy factory (decorator or direct).

    The factory receives the live :class:`repro.core.BrelOptions` of a
    solve and must return a fresh
    :class:`~repro.core.explore.ExplorationStrategy`::

        from repro.api import register_strategy
        from repro.core import FifoStrategy

        @register_strategy("narrow-bfs")
        def narrow_bfs(options):
            return FifoStrategy(capacity=4)

        SolveRequest(relation="fig1", strategy="narrow-bfs")
    """
    return strategy_registry.register(name, factory, overwrite=overwrite)


def get_cost(name: str) -> CostFunction:
    """Resolve a cost-function name."""
    return cost_registry.get(name)


def get_minimizer(name: str) -> IsfMinimizer:
    """Resolve a minimiser name."""
    return minimizer_registry.get(name)


def cost_names() -> List[str]:
    """Sorted names of the registered cost functions."""
    return cost_registry.names()


def minimizer_names() -> List[str]:
    """Sorted names of the registered minimisers."""
    return minimizer_registry.names()


def get_strategy(name: str) -> StrategyFactory:
    """Resolve an exploration-strategy name to its factory."""
    return strategy_registry.get(name)


def strategy_names() -> List[str]:
    """Sorted names of the registered exploration strategies."""
    return strategy_registry.names()
