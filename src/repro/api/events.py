"""One serialiser for the solve-event stream, shared by every surface.

A running solve emits typed :class:`~repro.core.SolveEvent`\\ s.  Two
front ends render them — the CLI's ``--progress`` stderr stream and the
service layer's ``POST /solve/stream`` Server-Sent Events — and both
must agree on what an event *is* on the wire.  This module is that
single source of truth:

* :func:`event_to_jsonable` — the canonical JSON form of one event
  (also what :attr:`SolveReport.trace` rows contain);
* :func:`format_event` — the human-readable one-liner the CLI prints,
  built *from* the jsonable form so the two renderings can never
  disagree about an event's fields.

Keep new event fields flowing through here: adding a key to
:meth:`SolveEvent.as_dict` automatically lands it in both the SSE
payloads and (if :func:`format_event` is taught about it) the progress
lines.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Union

from ..core.explore import SolveEvent

__all__ = ["event_to_jsonable", "format_event"]


def event_to_jsonable(event: Union[SolveEvent, Mapping[str, Any]]
                      ) -> Dict[str, Any]:
    """Canonical JSON-ready dict of one solve event.

    Accepts either a live :class:`SolveEvent` or an already-serialised
    row (e.g. a :attr:`SolveReport.trace` entry), so replaying a
    recorded trace through an SSE stream needs no special casing.
    """
    if isinstance(event, SolveEvent):
        return event.as_dict()
    return dict(event)


def format_event(event: Union[SolveEvent, Mapping[str, Any]]) -> str:
    """The CLI progress line for one event (no trailing newline)."""
    data = event_to_jsonable(event)
    parts = ["[%7.3fs]" % data["elapsed_seconds"],
             "%-14s" % data["kind"],
             "explored=%d" % data["explored"]]
    if data.get("cost") is not None:
        parts.append("cost=%.0f" % data["cost"])
    if data.get("best_cost") is not None:
        parts.append("best=%.0f" % data["best_cost"])
    if data.get("detail"):
        parts.append("(%s)" % data["detail"])
    return " ".join(parts)
