"""Declarative solve specifications.

A :class:`SolveRequest` describes one BREL solve as *pure data*: the
relation source, the objective, the minimiser, the exploration mode, and
the budgets — everything :class:`repro.core.BrelOptions` holds, but with
the live callables replaced by registry names so the spec round-trips
through JSON (``from_dict(r.to_dict()) == r``), can be stored in batch
manifests, and can cross process boundaries.

Relation sources
----------------
The ``relation`` field is a small tagged dict (a bare string is shorthand
for a session-registered name).  Supported kinds mirror the package's
ingestion paths:

``{"kind": "name", "name": N}``
    a relation previously ingested into the :class:`~repro.api.Session`;
``{"kind": "file", "path": P}``
    a PLA-dialect relation file (:mod:`repro.core.relio`);
``{"kind": "pla", "text": T}``
    the same dialect, inline;
``{"kind": "bench", "name": N}``
    a bundled :mod:`repro.benchdata` suite instance;
``{"kind": "output_sets", "rows": [[..], ..], "num_inputs": n,
"num_outputs": m}``
    the tabular notation of the paper's examples;
``{"kind": "truth_tables", "tables": [t0, ..], "num_inputs": n}``
    one truth-table bitmask per (completely specified) output;
``{"kind": "equations", "equations": [..], "independents": [..],
"dependents": [..]}``
    a Boolean equation system (paper Section 8) solved through its BR.
"""

from __future__ import annotations

import dataclasses
import json
import os
import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..core.brel import BrelOptions
from ..core.relation import BooleanRelation
from .registry import cost_registry, minimizer_registry

#: What callers may pass as a relation source.
RelationSpec = Union[str, Mapping[str, Any]]

_SPEC_KEYS = {
    "name": ("name",),
    "file": ("path",),
    "pla": ("text",),
    "bench": ("name",),
    "output_sets": ("rows", "num_inputs", "num_outputs"),
    "truth_tables": ("tables", "num_inputs"),
    "equations": ("equations", "independents", "dependents"),
}


def normalize_relation_spec(spec: RelationSpec) -> Dict[str, Any]:
    """Canonicalise a relation source into a hashable-value dict.

    Sequences become tuples (``output_sets`` rows additionally sorted and
    deduplicated) so that two specs describing the same source compare
    equal regardless of JSON/Python container types.
    """
    if isinstance(spec, str):
        spec = {"kind": "name", "name": spec}
    if not isinstance(spec, Mapping):
        raise TypeError("relation spec must be a string or a mapping, "
                        "got %r" % type(spec).__name__)
    kind = spec.get("kind")
    if kind not in _SPEC_KEYS:
        raise ValueError("unknown relation kind %r (expected one of %s)"
                         % (kind, ", ".join(sorted(_SPEC_KEYS))))
    expected = _SPEC_KEYS[kind]
    extra = set(spec) - set(expected) - {"kind"}
    missing = set(expected) - set(spec)
    if extra or missing:
        raise ValueError("malformed %r relation spec (missing: %s, "
                         "unexpected: %s)"
                         % (kind, sorted(missing) or "-",
                            sorted(extra) or "-"))
    out: Dict[str, Any] = {"kind": kind}
    for key in expected:
        value = spec[key]
        if key == "rows":
            value = tuple(tuple(sorted(set(int(v) for v in row)))
                          for row in value)
        elif key in ("tables", "equations", "independents", "dependents"):
            value = tuple(value)
        out[key] = value
    return out


def relation_spec_to_jsonable(spec: Mapping[str, Any]) -> Dict[str, Any]:
    """The inverse container mapping: tuples back to JSON lists."""
    out: Dict[str, Any] = {}
    for key, value in spec.items():
        if key == "rows":
            value = [list(row) for row in value]
        elif isinstance(value, tuple):
            value = list(value)
        out[key] = value
    return out


def truth_tables_to_output_sets(tables: Sequence[int],
                                num_inputs: int) -> List[set]:
    """Expand per-output truth-table bitmasks into output-set rows.

    Bit ``i`` of ``tables[j]`` is output ``j``'s value on the input
    vertex encoded by ``i`` — the encoding used throughout the test
    suite.  The result is functional (one output vertex per row).
    """
    rows: List[set] = []
    for vertex in range(1 << num_inputs):
        value = 0
        for position, table in enumerate(tables):
            if (int(table) >> vertex) & 1:
                value |= 1 << position
        rows.append({value})
    return rows


def build_relation(spec: RelationSpec) -> BooleanRelation:
    """Materialise a self-contained relation spec.

    Handles every kind except ``"name"``, which only a
    :class:`~repro.api.Session` (the owner of the name table) can
    resolve.
    """
    spec = normalize_relation_spec(spec)
    kind = spec["kind"]
    if kind == "name":
        raise ValueError("relation %r is a session name; resolve it "
                         "through Session.solve()/solve_many()"
                         % spec["name"])
    if kind == "file":
        from ..core.relio import load_relation
        return load_relation(spec["path"])
    if kind == "pla":
        from ..core.relio import parse_relation
        return parse_relation(spec["text"])
    if kind == "bench":
        from ..benchdata import instance_by_name
        return instance_by_name(spec["name"]).build()
    if kind == "output_sets":
        return BooleanRelation.from_output_sets(
            [set(row) for row in spec["rows"]],
            spec["num_inputs"], spec["num_outputs"])
    if kind == "truth_tables":
        num_inputs = spec["num_inputs"]
        tables = spec["tables"]
        rows = truth_tables_to_output_sets(tables, num_inputs)
        return BooleanRelation.from_output_sets(rows, num_inputs,
                                                len(tables))
    # kind == "equations"
    from ..equations.system import BooleanSystem
    system = BooleanSystem.parse(list(spec["equations"]),
                                 list(spec["independents"]),
                                 list(spec["dependents"]))
    if not system.is_consistent():
        raise ValueError("the Boolean system is inconsistent")
    return system.to_relation()


def merge_manifest_jobs(data: Any, base: str = "") -> List[Dict[str, Any]]:
    """Expand manifest JSON into per-job request dicts.

    A manifest is either a JSON list of :class:`SolveRequest` dicts or
    an object ``{"defaults": {...}, "jobs": [{...}, ...]}`` where each
    job is merged over the defaults.  Relation ``file`` paths are
    resolved relative to ``base`` (the manifest's directory) so a
    corpus travels with its relation files.  Used by the CLI's
    ``batch`` verb and the service layer's prewarming corpus loader.
    """
    if isinstance(data, dict):
        defaults = data.get("defaults", {})
        jobs = data.get("jobs")
        if jobs is None:
            raise ValueError("manifest object needs a 'jobs' list")
    elif isinstance(data, list):
        defaults, jobs = {}, data
    else:
        raise ValueError("manifest must be a JSON list or object")
    merged_jobs: List[Dict[str, Any]] = []
    for position, job in enumerate(jobs):
        if not isinstance(job, dict):
            raise ValueError("job %d is not a JSON object" % position)
        merged = dict(defaults)
        merged.update(job)
        relation = merged.get("relation")
        if (isinstance(relation, dict) and relation.get("kind") == "file"
                and base and not os.path.isabs(relation.get("path", ""))):
            relation = dict(relation)
            relation["path"] = os.path.join(base, relation["path"])
            merged["relation"] = relation
        merged_jobs.append(merged)
    return merged_jobs


def load_manifest(path: str) -> List["SolveRequest"]:
    """Parse a batch/prewarm manifest file into validated requests."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    base = os.path.dirname(os.path.abspath(path))
    return [SolveRequest.from_dict(job)
            for job in merge_manifest_jobs(data, base)]


@dataclass(frozen=True)
class SolveRequest:
    """One solve, described declaratively.

    All solver knobs mirror :class:`repro.core.BrelOptions` but name the
    callables through the :mod:`repro.api.registry` tables.  Construction
    validates everything eagerly — unknown registry names, bad modes, and
    negative budgets are rejected here, not deep inside a worker process.
    """

    relation: Any = None
    cost: str = "size"
    minimizer: str = "isop"
    mode: str = "bfs"
    strategy: Optional[str] = None
    max_explored: Optional[int] = 10
    fifo_capacity: Optional[int] = 64
    #: Tri-state like the BrelOptions field: None = strategy default
    #: (on for bfs/best-first/beam, off for dfs).
    quick_on_subrelations: Optional[bool] = None
    symmetry_pruning: bool = False
    symmetry_max_depth: int = 2
    time_limit_seconds: Optional[float] = None
    record_trace: bool = False
    #: Subproblem-memoisation tri-state: ``None`` follows the session's
    #: default (enabled unless :meth:`Session.disable_memo` was called),
    #: ``True`` forces the session's store, ``False`` opts this solve
    #: out.  Results are byte-identical either way; only the stats
    #: (``memo_hits`` etc.) and the wall clock differ.
    memo: Optional[bool] = None
    #: Output-block decomposition tri-state (mirrors
    #: :attr:`repro.core.BrelOptions.decompose`): ``None`` (auto) and
    #: ``True`` shard the relation into verified-independent output
    #: blocks when the partition finds at least two, ``False`` always
    #: solves monolithically.  Sharded reports carry the block
    #: breakdown in :attr:`SolveReport.partition`.
    decompose: Optional[bool] = None
    #: Function-engine selection (mirrors
    #: :attr:`repro.core.BrelOptions.backend`): ``None``/``"bdd"`` stay
    #: on the ROBDD engine, ``"auto"`` routes narrow (sub)relations to
    #: the bit-parallel truth-table kernel, ``"table"`` forces it
    #: (rejecting relations too wide to tabulate).  Logical results and
    #: costs are identical either way.
    backend: Optional[str] = None
    #: Width threshold for ``backend="auto"``/``"table"``; ``None``
    #: uses :data:`repro.table.DEFAULT_TABLE_WIDTH`.
    table_width: Optional[int] = None
    #: In-recursion routing tri-state (mirrors
    #: :attr:`repro.core.BrelOptions.route_subproblems`): ``True``
    #: serves narrow ISF minimisations inside the recursive loop from
    #: the table kernel (byte-identical results), ``False`` never does,
    #: ``None`` (auto) follows ``backend="auto"``.
    route_subproblems: Optional[bool] = None
    #: Raw-table kernel (mirrors
    #: :attr:`repro.core.BrelOptions.table_kernel`): ``"int"``,
    #: ``"numpy"``, ``"auto"``, or ``None`` to honour
    #: ``REPRO_TABLE_KERNEL`` then default to auto.
    table_kernel: Optional[str] = None
    #: Racer line-up for ``strategy="portfolio"`` (mirrors
    #: :attr:`repro.core.BrelOptions.portfolio_racers`): ``None`` races
    #: the default line-up; otherwise a comma-separated string or a
    #: list of names/spec mappings, normalised here to the canonical
    #: spec tuple so equal line-ups compare (and cache) equal.
    portfolio_racers: Any = None
    #: Racer executor (``"serial"``/``"thread"``/``"process"``; ``None``
    #: = thread).  An execution detail like the session's block
    #: executor: never part of a cache key.
    portfolio_executor: Optional[str] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.relation is not None:
            object.__setattr__(self, "relation",
                               normalize_relation_spec(self.relation))
        if self.portfolio_racers is not None:
            from ..core.portfolio import normalize_racers
            object.__setattr__(self, "portfolio_racers",
                               normalize_racers(self.portfolio_racers))
        if self.mode != "bfs":
            # The request warns here, once; to_options() deliberately
            # does not (it runs on every solve of the same request).
            warnings.warn(
                "the 'mode' field is a deprecated alias; pass "
                "strategy=%r instead" % self.mode,
                DeprecationWarning, stacklevel=3)
        if self.cost not in cost_registry:
            cost_registry.get(self.cost)  # raises with the valid names
        if self.minimizer not in minimizer_registry:
            minimizer_registry.get(self.minimizer)
        # Budget validation is shared with BrelOptions.__post_init__; build
        # the options eagerly so a bad request never reaches a worker.
        self.to_options()

    # -- conversion ----------------------------------------------------
    def exploration_strategy(self) -> str:
        """The effective strategy name (``strategy`` wins over the
        deprecated ``mode`` alias)."""
        return self.strategy if self.strategy is not None else self.mode

    def to_options(self) -> BrelOptions:
        """Resolve the registry names into live :class:`BrelOptions`.

        The options are constructed with the *effective* strategy (so
        every validation — including strategy-specific combinations —
        runs against what will actually explore), then the
        ``strategy``/``mode`` fields are restored verbatim.  Routing the
        deprecated alias around ``BrelOptions.__post_init__`` keeps its
        DeprecationWarning from re-firing on every solve of a request
        that already warned at construction.
        """
        options = BrelOptions(
            cost_function=cost_registry.get(self.cost),
            minimizer=minimizer_registry.get(self.minimizer),
            strategy=self.exploration_strategy(),
            max_explored=self.max_explored,
            fifo_capacity=self.fifo_capacity,
            quick_on_subrelations=self.quick_on_subrelations,
            symmetry_pruning=self.symmetry_pruning,
            symmetry_max_depth=self.symmetry_max_depth,
            time_limit_seconds=self.time_limit_seconds,
            record_trace=self.record_trace,
            memo=self.memo,
            decompose=self.decompose,
            backend=self.backend,
            table_width=self.table_width,
            route_subproblems=self.route_subproblems,
            table_kernel=self.table_kernel,
            portfolio_racers=self.portfolio_racers,
            portfolio_executor=self.portfolio_executor)
        options.strategy = self.strategy
        options.mode = self.mode
        return options

    @classmethod
    def from_options(cls, options: BrelOptions,
                     relation: Optional[RelationSpec] = None,
                     label: Optional[str] = None) -> "SolveRequest":
        """Serialise live options back into a request.

        Requires the cost function and minimiser to be registered (the
        registries are the only way to name a callable as data).
        """
        cost = cost_registry.name_of(options.cost_function)
        if cost is None:
            raise ValueError("cost function %r is not registered; "
                             "register_cost() it first"
                             % getattr(options.cost_function, "__name__",
                                       options.cost_function))
        minimizer = minimizer_registry.name_of(options.minimizer)
        if minimizer is None:
            raise ValueError("minimizer %r is not registered; "
                             "register_minimizer() it first"
                             % getattr(options.minimizer, "__name__",
                                       options.minimizer))
        return cls(relation=relation, cost=cost, minimizer=minimizer,
                   mode=options.mode, strategy=options.strategy,
                   max_explored=options.max_explored,
                   fifo_capacity=options.fifo_capacity,
                   quick_on_subrelations=options.quick_on_subrelations,
                   symmetry_pruning=options.symmetry_pruning,
                   symmetry_max_depth=options.symmetry_max_depth,
                   time_limit_seconds=options.time_limit_seconds,
                   record_trace=options.record_trace,
                   memo=options.memo,
                   decompose=options.decompose,
                   backend=options.backend,
                   table_width=options.table_width,
                   route_subproblems=options.route_subproblems,
                   table_kernel=options.table_kernel,
                   portfolio_racers=options.portfolio_racers,
                   portfolio_executor=options.portfolio_executor,
                   label=label)

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-ready dict; ``from_dict`` inverts it exactly."""
        out: Dict[str, Any] = dataclasses.asdict(self)
        if self.relation is not None:
            out["relation"] = relation_spec_to_jsonable(self.relation)
        if self.portfolio_racers is not None:
            out["portfolio_racers"] = [dict(spec)
                                       for spec in self.portfolio_racers]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SolveRequest":
        """Build a request from a dict, rejecting unknown keys.

        Pre-strategy-era dicts (no ``strategy`` key — every dict this
        class now emits has one) always carried
        ``quick_on_subrelations: true``, the old field default, which
        the old solver *ignored* under ``mode="dfs"``.  Replaying such
        a dict must not silently opt the DFS into per-subrelation
        QuickSolver runs, so the legacy combination maps back to the
        tri-state default.
        """
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError("unknown SolveRequest fields: %s"
                             % ", ".join(sorted(unknown)))
        data = dict(data)
        if ("strategy" not in data and data.get("mode") == "dfs"
                and data.get("quick_on_subrelations") is True):
            data["quick_on_subrelations"] = None
        return cls(**data)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SolveRequest":
        return cls.from_dict(json.loads(text))

    # -- convenience ---------------------------------------------------
    def replace(self, **changes: Any) -> "SolveRequest":
        """A copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **changes)
