"""The official front door of the package: sessions, requests, reports.

This layer turns relation solving into a *service* interface (the framing
of the source paper's tool): a solve is described as data
(:class:`SolveRequest`), executed inside a :class:`Session` that owns the
BDD managers and a result cache, and answered with a structured
:class:`SolveReport`.  Batches run process-parallel through
:meth:`Session.solve_many`; custom objectives and minimisers plug in
through the named registries.

Quickstart::

    from repro.api import Session, SolveRequest

    session = Session()
    session.add_output_sets(
        "fig1", [{0b01}, {0b01}, {0b00, 0b11}, {0b10, 0b11}], 2, 2)
    report = session.solve(SolveRequest(relation="fig1", cost="size"))
    print(report.sop, report.cost, report.compatible)

    # The same solve as wire-ready JSON:
    text = SolveRequest(relation="fig1").to_json()
    again = SolveRequest.from_json(text)

Anytime solving: :meth:`Session.solve_iter` yields each strictly
improving solution as the search finds it, honours a
:class:`CancelToken`, and returns the final :class:`SolveReport` as
the generator's return value::

    gen = session.solve_iter(SolveRequest(relation="fig1",
                                          strategy="best-first"))
    for improvement in gen:
        print(improvement.cost, improvement.elapsed_seconds)
"""

from ..core.explore import CancelToken, Improvement, SolveEvent
from ..core.memo import MemoStore
from .events import event_to_jsonable, format_event
from .registry import (COSTS, Registry, cost_names, cost_registry, get_cost,
                       get_minimizer, get_strategy, minimizer_names,
                       minimizer_registry, register_cost, register_minimizer,
                       register_strategy, strategy_names, strategy_registry)
from .report import REPORT_SCHEMA_VERSION, SolveReport
from .request import (RelationSpec, SolveRequest, build_relation,
                      load_manifest, normalize_relation_spec)
from .session import RelationLike, Session

__all__ = [
    "COSTS",
    "CancelToken",
    "Improvement",
    "MemoStore",
    "REPORT_SCHEMA_VERSION",
    "Registry",
    "RelationLike",
    "RelationSpec",
    "Session",
    "SolveEvent",
    "SolveReport",
    "SolveRequest",
    "build_relation",
    "cost_names",
    "cost_registry",
    "event_to_jsonable",
    "format_event",
    "get_cost",
    "get_minimizer",
    "get_strategy",
    "load_manifest",
    "minimizer_names",
    "minimizer_registry",
    "normalize_relation_spec",
    "register_cost",
    "register_minimizer",
    "register_strategy",
    "strategy_names",
    "strategy_registry",
]
