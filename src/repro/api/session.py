"""The session layer: named relations, cached solving, batch execution.

A :class:`Session` is the stateful front door of the package.  It

* owns reusable :class:`~repro.bdd.BddManager` instances (one per
  relation shape) so relations ingested through it share BDD nodes —
  the Section 7.1 sharing benefit, extended across relations;
* accepts relations from every ingestion path the package has (output
  sets, PLA-dialect files/strings, truth tables, Boolean equation
  systems, bundled benchmarks) and registers them under names a
  :class:`~repro.api.SolveRequest` can refer to;
* runs single solves (:meth:`Session.solve`) and batches
  (:meth:`Session.solve_many`) with a shared result cache, the latter
  optionally process-parallel via :mod:`concurrent.futures`, with
  per-job failures captured as failed :class:`SolveReport`\\ s rather
  than raised.

Batch jobs are made *self-contained* before dispatch: the relation is
snapshotted to PLA text and the request travels as its dict form, so a
job needs nothing from the parent process beyond importable code.
(Custom registry entries reach workers through the default ``fork``
start method on POSIX; under ``spawn`` they must be registered at import
time of a module the workers import.)
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import (FIRST_COMPLETED, ProcessPoolExecutor,
                                ThreadPoolExecutor, wait)
from typing import (Any, Dict, Generator, Iterable, List, Mapping, Optional,
                    Sequence, Tuple, Union)

from ..bdd.manager import BddManager
from ..core.brel import BrelResult, BrelSolver
from ..core.explore import CancelToken, Improvement, Observer
from ..core.memo import DEFAULT_MEMO_CAPACITY, MemoStore
from ..core.partition import (block_functions_from_pla, merge_block_stats,
                              partition_relation, worst_stopped)
from ..core.relation import BooleanRelation
from ..core.relio import parse_relation, peek_shape, write_relation
from ..core.solution import Solution, SolverStats
from .report import SolveReport
from .request import (RelationSpec, SolveRequest, build_relation,
                      normalize_relation_spec, relation_spec_to_jsonable,
                      truth_tables_to_output_sets)

#: What solve()/solve_many() accept as the thing to solve.
RelationLike = Union[BooleanRelation, RelationSpec]

#: Widest relation (in inputs) solve_many will snapshot to PLA text for
#: pool executors.  The snapshot enumerates all 2^inputs input vertices,
#: so past this point the "parallel" path would silently hang.
DEFAULT_MAX_SNAPSHOT_INPUTS = 16

#: Node count past which a session garbage-collects a manager between
#: solves (None disables auto-trimming).
DEFAULT_AUTO_TRIM_NODES = 500_000

#: Most-recent memo entries a batch ships to each worker process; keeps
#: the initializer payload bounded no matter how full the parent store
#: is.
DEFAULT_MEMO_EXPORT_LIMIT = 2048

#: Per-worker-process memo store, installed by :func:`_init_worker_memo`
#: (the process-pool initializer).  Jobs flagged ``memo_shared`` solve
#: through it, so the seed entries are pickled once per worker — not
#: once per job — and every job reuses what earlier jobs in the same
#: worker learned.  Stays ``None`` in the parent process.
_worker_memo: Optional[MemoStore] = None


def _init_worker_memo(entries: List[Tuple[Any, Any]],
                      capacity: Optional[int]) -> None:
    """Process-pool initializer: seed this worker's shared memo store."""
    global _worker_memo
    _worker_memo = MemoStore(capacity=capacity, entries=entries)


def _solve_payload(payload: Dict[str, Any],
                   cancel: Optional[CancelToken] = None) -> SolveReport:
    """Execute one self-contained batch job (runs in worker processes).

    Never raises: any failure — malformed request, unparsable relation,
    solver error — comes back as a failed report so one bad job cannot
    poison a batch.  ``cancel`` reaches thread workers (shared memory);
    process workers cannot share a token and stop only between jobs.

    Memoisation: process jobs set ``payload["memo_shared"]`` and solve
    through the worker-global store installed by
    :func:`_init_worker_memo`; thread jobs carry the exported
    parent-store entries in ``payload["memo"]`` and build a private
    seeded store (``MemoStore`` is not thread-safe, so thread workers
    must not share one).  Either way the templates are
    manager-independent, so they instantiate cleanly into the worker's
    fresh manager, and the hit/miss counters travel back inside the
    report's stats for the parent to merge.
    """
    label = payload.get("label")
    request_dict = payload.get("request")
    try:
        request = SolveRequest.from_dict(request_dict)
        relation = parse_relation(payload["pla"])
        if payload.get("memo_shared"):
            memo = _worker_memo
        else:
            memo_entries = payload.get("memo")
            memo = (MemoStore(capacity=payload.get("memo_capacity",
                                                   DEFAULT_MEMO_CAPACITY),
                              entries=memo_entries)
                    if memo_entries is not None else None)
        result = BrelSolver(request.to_options(),
                            memo=memo).solve(relation, cancel=cancel)
        report = SolveReport.from_result(relation, result,
                                         request=request_dict, label=label)
        # BDD handles must not cross back over the process boundary:
        # materialise the PLA text while the solution is still live,
        # then ship the data-only report.
        report.solution_pla()
        report.solution = None
        return report
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        return SolveReport.from_error(exc, request=request_dict,
                                      label=label)


class Session:
    """A workspace of named relations with cached, batchable solving.

    Memory management: registered relations are *pinned* in their BDD
    manager, so :meth:`trim` (explicit) and the automatic between-solve
    trim (``auto_trim_nodes``) can garbage-collect everything else —
    solver scratch, dead intermediate relations — while keeping every
    registered relation valid.  A trim invalidates live
    :class:`~repro.core.Solution` handles returned by earlier solves
    (their data renderings — SOP, PLA, cost — are unaffected); cached
    reports keep serving data and re-solve lazily when a live handle is
    requested again.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 max_snapshot_inputs: int = DEFAULT_MAX_SNAPSHOT_INPUTS,
                 auto_trim_nodes: Optional[int] = DEFAULT_AUTO_TRIM_NODES,
                 memo_enabled: bool = True,
                 memo_capacity: Optional[int] = DEFAULT_MEMO_CAPACITY
                 ) -> None:
        self._relations: Dict[str, BooleanRelation] = {}
        self._managers: Dict[Tuple[int, int], BddManager] = {}
        self._cache: Dict[Tuple[Any, ...], SolveReport] = {}
        self.cache_hits = 0
        self.default_max_workers = max_workers
        self.max_snapshot_inputs = max_snapshot_inputs
        self.auto_trim_nodes = auto_trim_nodes
        self.trims = 0
        #: The session-wide subproblem memo, shared by every solve and
        #: relation (templates are manager-independent).  ``memo_enabled``
        #: is the default for requests whose ``memo`` field is ``None``;
        #: an explicit ``memo=True``/``False`` on a request wins.
        self.memo = MemoStore(capacity=memo_capacity)
        self.memo_enabled = memo_enabled

    # ------------------------------------------------------------------
    # Managers
    # ------------------------------------------------------------------
    def manager_for(self, num_inputs: int, num_outputs: int) -> BddManager:
        """The session's shared manager for a relation shape."""
        key = (num_inputs, num_outputs)
        if key not in self._managers:
            self._managers[key] = BddManager(
                ["x%d" % i for i in range(num_inputs)]
                + ["y%d" % j for j in range(num_outputs)])
        return self._managers[key]

    def _session_managers(self) -> List[BddManager]:
        """Every manager this session owns or has adopted, deduplicated."""
        managers: List[BddManager] = []
        seen = set()
        for mgr in self._managers.values():
            if id(mgr) not in seen:
                seen.add(id(mgr))
                managers.append(mgr)
        for relation in self._relations.values():
            if id(relation.mgr) not in seen:
                seen.add(id(relation.mgr))
                managers.append(relation.mgr)
        return managers

    def engine_stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-manager :meth:`BddManager.stats` snapshots.

        Shape-owned managers key as ``"shape:IxO"``.  Managers adopted
        through registered relations (equation systems, benchmarks) key
        as ``"adopted:N"``, numbered by sorted relation name; the labels
        are positional and recomputed per call, so they can shift when
        relations are added or removed — treat each call's result as a
        self-contained snapshot.  The subproblem memo's counters appear
        under the ``"memo"`` key (see :meth:`memo_stats`).
        """
        out: Dict[str, Dict[str, Any]] = {}
        seen = set()
        for (ni, no), mgr in sorted(self._managers.items()):
            out["shape:%dx%d" % (ni, no)] = mgr.stats()
            seen.add(id(mgr))
        adopted = 0
        for name in sorted(self._relations):
            mgr = self._relations[name].mgr
            if id(mgr) not in seen:
                seen.add(id(mgr))
                out["adopted:%d" % adopted] = mgr.stats()
                adopted += 1
        out["memo"] = self.memo.stats()
        return out

    # ------------------------------------------------------------------
    # Subproblem memoisation
    # ------------------------------------------------------------------
    def enable_memo(self) -> None:
        """Restore the default: solves use the session memo store."""
        self.memo_enabled = True

    def disable_memo(self) -> None:
        """Stop consulting the memo store (entries are kept).

        Per-request ``memo=True`` still opts back in.  The report cache
        keys on the effective memo decision, so reports solved while
        the store was on are not served to post-toggle solves (whose
        memo_* stats must read zero) and vice versa.  Disable the store
        when solving relations through a *custom registered cost
        function* that is sensitive to variable identities beyond their
        order — the store recognises subproblems up to order-preserving
        renamings, so such a cost could price a cross-renaming hit
        differently than a fresh solve (the built-in costs and
        minimisers are all renaming-invariant).
        """
        self.memo_enabled = False

    def clear_memo(self) -> None:
        """Drop every memoised subproblem (counters are kept)."""
        self.memo.clear()

    def memo_stats(self) -> Dict[str, Any]:
        """Hit/miss/eviction counters and size of the session memo."""
        return self.memo.stats()

    def _memo_for(self, request: SolveRequest) -> Optional[MemoStore]:
        """The store a request's solve should use (or ``None``)."""
        use = (request.memo if request.memo is not None
               else self.memo_enabled)
        return self.memo if use else None

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------
    def trim(self) -> Dict[str, Dict[str, Any]]:
        """Reclaim engine memory now: GC every manager, drop op caches.

        Registered relations survive (they are pinned and remapped);
        everything unreachable — solver scratch, deregistered relations —
        is collected.  Live solutions handed out by earlier solves become
        invalid; their reports' data fields stay correct.  The memo
        store is evicted down to half capacity (its templates are
        manager-independent, so the engine GC itself never invalidates
        them — trimming it just returns memory).  Returns
        :meth:`engine_stats` after the collection.
        """
        for mgr in self._session_managers():
            self._trim_manager(mgr)
        self.memo.trim()
        return self.engine_stats()

    def _strip_solution(self, report: SolveReport) -> None:
        """Drop a report's live solution, keeping its data useful.

        The PLA rendering is materialised first — but only for narrow
        relations: ``write_relation`` enumerates all ``2^inputs`` input
        vertices, the exact blow-up ``max_snapshot_inputs`` exists to
        avoid.  Wide reports keep their SOP/cost data and re-solve
        lazily when a rendering or live handle is needed again.
        """
        if (report.num_inputs is not None
                and report.num_inputs <= self.max_snapshot_inputs):
            report.solution_pla()
        report.solution = None

    def _trim_manager(self, mgr: BddManager,
                      keep: Optional[BooleanRelation] = None,
                      extra_reports: Iterable[SolveReport] = (),
                      extra_payloads: Iterable[Dict[str, Any]] = ()
                      ) -> Optional[BooleanRelation]:
        """GC one manager, remapping this session's state through it.

        ``keep`` is an extra relation to protect (the one about to be
        solved); the remapped copy is returned.  Cached reports (and any
        ``extra_reports``, e.g. a batch's finished jobs) lose their live
        solutions (data is materialised first), identity-keyed cache
        entries of this manager are dropped — their key objects would
        hold stale node ids — and relations referenced by
        ``extra_payloads`` (a batch's pending jobs) are kept live and
        remapped in place.
        """
        stale_keys = []
        for key, report in self._cache.items():
            if isinstance(key[0], BooleanRelation) and key[0].mgr is mgr:
                # Doomed entry: no point materialising its renderings.
                stale_keys.append(key)
            elif (report.solution is not None
                    and report.solution.mgr is mgr):
                self._strip_solution(report)
        for key in stale_keys:
            del self._cache[key]
        for report in extra_reports:
            if (report.solution is not None
                    and report.solution.mgr is mgr):
                self._strip_solution(report)
        payload_relations = [
            (payload, payload["relation"]) for payload in extra_payloads
            if isinstance(payload.get("relation"), BooleanRelation)
            and payload["relation"].mgr is mgr]
        mgr.clear_caches()
        extra = [keep.node] if keep is not None else []
        extra.extend(relation.node for _, relation in payload_relations)
        mapping = mgr.collect(extra_roots=extra)
        for name, relation in list(self._relations.items()):
            if relation.mgr is mgr:
                self._relations[name] = relation.with_node(
                    mapping[relation.node])
        for payload, relation in payload_relations:
            payload["relation"] = relation.with_node(mapping[relation.node])
        self.trims += 1
        if keep is not None:
            return keep.with_node(mapping[keep.node])
        return None

    def _maybe_trim(self, resolved: BooleanRelation) -> BooleanRelation:
        """Auto-trim the solved relation's manager when it grew too big."""
        limit = self.auto_trim_nodes
        if limit is None or resolved.mgr.num_nodes <= limit:
            return resolved
        return self._trim_manager(resolved.mgr, keep=resolved)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add_relation(self, name: str, relation: BooleanRelation, *,
                     overwrite: bool = False) -> BooleanRelation:
        """Register an existing relation under ``name``.

        The relation's BDD root is pinned in its manager so session trims
        (:meth:`trim` / ``auto_trim_nodes``) never collect it.
        """
        previous = self._relations.get(name)
        if previous is not None and not overwrite:
            raise ValueError("relation %r is already registered "
                             "(pass overwrite=True to replace)" % name)
        relation.mgr.pin(relation.node)
        if previous is not None:
            previous.mgr.unpin(previous.node)
        self._relations[name] = relation
        return relation

    def remove_relation(self, name: str) -> None:
        """Deregister ``name``; its nodes become collectable on trim."""
        relation = self._relations.pop(name, None)
        if relation is None:
            raise KeyError("no relation named %r in this session" % name)
        relation.mgr.unpin(relation.node)

    def add_output_sets(self, name: str, rows: Sequence[Iterable[int]],
                        num_inputs: int, num_outputs: int,
                        **kwargs: Any) -> BooleanRelation:
        """Ingest the paper's tabular notation (Example 4.2 style)."""
        relation = BooleanRelation.from_output_sets(
            rows, num_inputs, num_outputs,
            mgr=self.manager_for(num_inputs, num_outputs))
        return self.add_relation(name, relation, **kwargs)

    def add_truth_tables(self, name: str, tables: Sequence[int],
                         num_inputs: int, **kwargs: Any) -> BooleanRelation:
        """Ingest one truth-table bitmask per completely specified output.

        See :func:`~repro.api.request.truth_tables_to_output_sets` for
        the encoding.  The result is a functional relation (no
        flexibility); useful as a degenerate case and for decomposition
        targets.
        """
        rows = truth_tables_to_output_sets(tables, num_inputs)
        return self.add_output_sets(name, rows, num_inputs, len(tables),
                                    **kwargs)

    def add_pla(self, name: str, text: str, **kwargs: Any) -> BooleanRelation:
        """Ingest a PLA-dialect relation string (:mod:`repro.core.relio`)."""
        num_inputs, num_outputs = peek_shape(text)
        mgr = self.manager_for(num_inputs, num_outputs)
        return self.add_relation(name, parse_relation(text, mgr=mgr),
                                 **kwargs)

    def add_pla_file(self, name: str, path: str,
                     **kwargs: Any) -> BooleanRelation:
        """Ingest a PLA-dialect relation file."""
        with open(path, "r", encoding="ascii") as handle:
            return self.add_pla(name, handle.read(), **kwargs)

    def add_system(self, name: str, system: Any,
                   independents: Optional[Sequence[str]] = None,
                   dependents: Optional[Sequence[str]] = None,
                   **kwargs: Any) -> BooleanRelation:
        """Ingest a Boolean equation system (paper Section 8).

        ``system`` is either a :class:`repro.equations.BooleanSystem` or a
        sequence of equation strings (then ``independents`` and
        ``dependents`` are required).  The system's own manager is kept —
        its variables carry the user's names.
        """
        from ..equations.system import BooleanSystem
        if not isinstance(system, BooleanSystem):
            if independents is None or dependents is None:
                raise ValueError("equation strings need independents= "
                                 "and dependents=")
            system = BooleanSystem.parse(list(system), list(independents),
                                         list(dependents))
        if not system.is_consistent():
            raise ValueError("the Boolean system is inconsistent")
        return self.add_relation(name, system.to_relation(), **kwargs)

    def add_benchmark(self, name: str,
                      instance: Optional[str] = None,
                      **kwargs: Any) -> BooleanRelation:
        """Ingest a bundled :mod:`repro.benchdata` suite instance."""
        from ..benchdata import instance_by_name
        relation = instance_by_name(instance or name).build()
        return self.add_relation(name, relation, **kwargs)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def relation(self, name: str) -> BooleanRelation:
        """Look up a registered relation."""
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError("no relation named %r in this session "
                           "(registered: %s)"
                           % (name, ", ".join(sorted(self._relations))
                              or "none")) from None

    def relation_names(self) -> List[str]:
        return sorted(self._relations)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def resolve_relation(self, source: RelationLike) -> BooleanRelation:
        """Materialise any accepted relation source."""
        if isinstance(source, BooleanRelation):
            return source
        if isinstance(source, str):
            return self.relation(source)
        if isinstance(source, Mapping) and source.get("kind") == "name":
            return self.relation(source["name"])
        return build_relation(source)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _options_key(self, request: SolveRequest) -> Tuple[Any, ...]:
        # The *effective* strategy keys the entry, so mode="dfs" and
        # strategy="dfs" share a slot; record_trace is keyed because it
        # changes the report's content (the trace field).  Memoisation
        # keys by its *effective* decision (the tri-state resolved
        # against the session toggle), so memo=True and memo=None share
        # a slot while the session default is on, and flipping
        # disable_memo()/enable_memo() stops earlier reports (whose
        # memo_* stats reflect the other setting) from being served.
        # Every future request field that can alter a report's content
        # MUST join this tuple — the schema-evolution regression test
        # (tests/api/test_session_memo.py::TestCacheKeySchemaGuard)
        # enumerates the dataclass fields to catch omissions.
        # Decomposition keys by its *effective* decision too: None
        # (auto) and True shard identically, so they share a slot,
        # while False reports lack the partition breakdown and must
        # not be served to sharded requests (or vice versa).  The
        # block executor is deliberately NOT keyed: sharded results
        # are byte-identical across serial/thread/process dispatch.
        # The backend IS keyed (conservatively, by resolved value):
        # routed solves are logically identical but their reports'
        # engine stats (node/cache counters) describe a different
        # kernel, so backends get separate slots rather than serving
        # one backend's counters as the other's.  route_subproblems and
        # table_kernel are keyed raw (not resolved) for the same
        # reason: answers are byte-identical either way, but the
        # routing counters in the cached report's stats describe the
        # requested configuration.
        # The portfolio racer line-up keys by its *resolved* canonical
        # JSON — None and an explicitly spelled-out default line-up
        # share a slot — while portfolio_executor, like the block
        # executor, is an execution detail (results are cost-identical
        # across serial/thread/process racing) and is NOT keyed.
        if request.exploration_strategy() == "portfolio":
            from ..core.portfolio import racers_cache_key
            racers = racers_cache_key(request.portfolio_racers)
        else:
            racers = None
        return (request.cost, request.minimizer,
                request.exploration_strategy(),
                request.max_explored, request.fifo_capacity,
                request.quick_on_subrelations, request.symmetry_pruning,
                request.symmetry_max_depth, request.time_limit_seconds,
                request.record_trace, self._memo_for(request) is not None,
                request.decompose is not False,
                request.backend or "bdd", request.table_width,
                request.route_subproblems, request.table_kernel,
                racers)

    def _cache_key(self, pla: str, request: SolveRequest
                   ) -> Tuple[Any, ...]:
        """Snapshot-based key for batch jobs (shareable across managers)."""
        return (pla,) + self._options_key(request)

    def _live_key(self, relation: BooleanRelation,
                  request: SolveRequest) -> Tuple[Any, ...]:
        """Identity-based key for interactive solves.

        Keying on the relation object (manager identity + node) avoids
        the exponential ``write_relation`` enumeration on every call and
        guarantees a cached live ``Solution`` belongs to the caller's
        manager.  The relation in the key keeps its manager alive, so
        ids cannot be recycled while the entry exists.
        """
        return (relation,) + self._options_key(request)

    def _spec_key(self, spec: Mapping[str, Any],
                  request: SolveRequest) -> Tuple[Any, ...]:
        """Content-based key for self-contained relation specs.

        The canonical spec JSON identifies the relation without building
        it, so repeated spec solves hit the cache instead of minting a
        fresh manager per call.
        """
        return ("spec", json.dumps(relation_spec_to_jsonable(dict(spec)),
                                   sort_keys=True)) \
            + self._options_key(request)

    @staticmethod
    def _portable_solution(report: SolveReport,
                           relation: Optional[BooleanRelation]):
        """A cached live solution is only valid in its own manager.

        Snapshot-keyed cache entries can be shared between same-content
        relations living in *different* managers; handing such a caller
        the foreign solution's node ids would crash or silently lie, so
        the live handle travels only when the managers match (the data
        fields — sop, pla, cost — are manager-independent).  When the
        handle cannot travel, the PLA text is materialised (once, onto
        the cached entry) so the served copy still carries a
        realisable function vector for consumers like the resynthesis
        pipeline that re-instantiate the solution from text.
        """
        if (report.solution is not None and relation is not None
                and report.solution.mgr is relation.mgr):
            return report.solution
        if report.solution is not None and report.pla is None:
            report.solution_pla()
        return None

    def clear_cache(self) -> None:
        self._cache.clear()
        self.cache_hits = 0

    @staticmethod
    def _cached_copy(report: SolveReport, **changes: Any) -> SolveReport:
        """A cache-served copy of ``report`` with honest per-job stats.

        Serving from the cache does no memoisation work, so the copy's
        ``memo_*`` deltas read zero — each report attributes exactly
        the store traffic *its own* solve caused, and summing the
        deltas across a batch (or a service's request log) matches the
        session store's counters instead of double-counting every
        deduplicated job.
        """
        copy = report.copy(cached=True, **changes)
        for field in ("memo_hits", "memo_misses", "memo_stores"):
            if field in copy.stats:
                copy.stats[field] = 0
        return copy

    # ------------------------------------------------------------------
    # External cache tiers (the service layer's hooks)
    # ------------------------------------------------------------------
    def options_key(self, request: SolveRequest) -> Tuple[Any, ...]:
        """The request's result-affecting option values, as a tuple.

        Every field that can change a report's content is present (the
        schema-evolution guard in the test suite enforces it), and all
        values are JSON-safe primitives — external cache tiers key
        their slots on this tuple plus a canonical relation rendering.
        Tri-states are resolved to their *effective* decision against
        this session's defaults, exactly like the in-RAM report cache.
        """
        return self._options_key(request)

    def peek_cached(self, request: Optional[SolveRequest] = None,
                    relation: Optional[RelationLike] = None
                    ) -> Optional[SolveReport]:
        """Probe the in-RAM report cache without ever solving.

        Returns the cached report for this request (a defensive copy,
        ``cached=True``) or ``None`` on a miss.  Unlike :meth:`solve`,
        a data-only entry — one produced by a pool worker or adopted
        from an external tier via :meth:`store_report` — *is* served:
        callers of this hook (the service layer) want the report data,
        not a live :class:`~repro.core.Solution` handle.  Input
        validation matches :meth:`solve`: unknown names and unreadable
        files raise here.
        """
        request = request or SolveRequest()
        _, _, key, _ = self._prepare_solve(request, relation)
        cached = self._cache.get(key)
        if cached is None:
            return None
        self.cache_hits += 1
        return self._cached_copy(cached, label=request.label,
                                 request=request.to_dict())

    def store_report(self, request: SolveRequest, report: SolveReport,
                     relation: Optional[RelationLike] = None) -> None:
        """Adopt an externally produced report into the in-RAM cache.

        The service layer promotes disk-tier hits through this hook so
        the *next* identical request is served from RAM.  The entry is
        stored data-only (any live solution handle is dropped — it
        belongs to a foreign manager) under exactly the key
        :meth:`solve` would compute, and the usual cache hygiene
        applies: failed and cancelled reports are never stored.
        """
        if not report.ok or report.stopped == "cancelled":
            return
        _, _, key, _ = self._prepare_solve(request, relation)
        self._cache[key] = report.copy(solution=None)

    def _prepare_solve(self, request: SolveRequest,
                       relation: Optional[RelationLike]
                       ) -> Tuple[Optional[BooleanRelation],
                                  Optional[Dict[str, Any]],
                                  Tuple[Any, ...], bool]:
        """Resolve the relation source into ``(resolved, spec, key,
        from_registry)`` without materialising spec-built relations.

        The cache key is picked *before* materialising anything: session
        names and caller objects key by identity; self-contained specs
        key by content (file specs become inline PLA text so on-disk
        edits invalidate), which lets repeated spec solves hit the
        cache instead of minting a fresh manager per call.
        """
        if relation is None:
            if request.relation is None:
                raise ValueError("no relation: pass relation= or set "
                                 "request.relation")
            relation = request.relation
        resolved: Optional[BooleanRelation] = None
        spec: Optional[Dict[str, Any]] = None
        from_registry = False
        if isinstance(relation, BooleanRelation):
            resolved = relation
            key = self._live_key(resolved, request)
        else:
            spec = normalize_relation_spec(relation)
            if spec["kind"] == "name":
                resolved = self.relation(spec["name"])
                from_registry = True
                key = self._live_key(resolved, request)
            else:
                if spec["kind"] == "file":
                    with open(spec["path"], "r",
                              encoding="ascii") as handle:
                        spec = {"kind": "pla", "text": handle.read()}
                key = self._spec_key(spec, request)
        return resolved, spec, key, from_registry

    def _materialize(self, resolved: Optional[BooleanRelation],
                     spec: Optional[Dict[str, Any]],
                     key: Tuple[Any, ...], from_registry: bool,
                     request: SolveRequest
                     ) -> Tuple[BooleanRelation, Tuple[Any, ...]]:
        """Build (or trim around) the relation a solve will run on."""
        if resolved is None:
            # Spec-built relations get a fresh manager per call; there is
            # nothing from earlier solves to reclaim in it.
            resolved = build_relation(spec)
        elif from_registry:
            # Auto-trim only fires for registry-resolved relations: the
            # session can remap those safely.  Trimming around a
            # caller-owned handle would leave the caller's object holding
            # stale node ids and silently corrupt its next use.
            trimmed = self._maybe_trim(resolved)
            if trimmed is not resolved:
                # The trim remapped node ids; re-key on the fresh object.
                resolved = trimmed
                key = self._live_key(resolved, request)
        return resolved, key

    def solve(self, request: Optional[SolveRequest] = None,
              relation: Optional[RelationLike] = None, *,
              cancel: Optional[CancelToken] = None,
              observer: Optional[Observer] = None,
              block_executor: str = "serial",
              block_workers: Optional[int] = None) -> SolveReport:
        """Run one solve and return its report.

        The relation comes from the explicit ``relation`` argument or,
        failing that, the request's ``relation`` spec.  Unlike
        :meth:`solve_many` this raises on failure — single solves are
        interactive.

        ``cancel`` stops an in-flight search cooperatively (the report
        then carries the best-so-far solution with
        ``stopped="cancelled"``); ``observer`` receives every
        :class:`~repro.core.SolveEvent` of a fresh run (cache hits
        emit no events).

        ``block_executor`` dispatches the *blocks of this one solve*
        when output-block decomposition shards the relation
        (:mod:`repro.core.partition`): ``"serial"`` (default) solves
        them in the fixed partition order inside the solver loop;
        ``"thread"`` / ``"process"`` ship each block to the same pool
        machinery :meth:`solve_many` uses (PLA snapshot out, data-only
        report back) and recombine the per-block solutions in the
        caller's manager — byte-identical to the serial result, since
        every block still runs the same deterministic strategy loop.
        Pool dispatch needs every block snapshotable
        (``max_snapshot_inputs``); relations that do not shard, calls
        that need the live event stream (an ``observer`` or
        ``record_trace`` — workers cannot stream events back), and
        environments without a working pool layer all fall back to the
        in-process solve, which still shards serially in-solver.
        ``block_workers`` caps the pool (default: one worker per
        block, capped at the CPU count).  Parallel-block reports are
        data-first like :meth:`solve_many` reports (no live
        ``solution`` handle on the recombined report's blocks; the
        recombined solution itself is live).
        """
        request = request or SolveRequest()
        if block_executor not in ("serial", "thread", "process"):
            raise ValueError("block_executor must be 'serial', "
                             "'thread' or 'process'")
        resolved, spec, key, from_registry = \
            self._prepare_solve(request, relation)
        cached = self._cache.get(key)
        # A worker-produced cache entry has its solution stripped; this
        # path promises a live solution, so re-solve (and upgrade the
        # cache entry) rather than serve it.
        if cached is not None and cached.solution is not None:
            self.cache_hits += 1
            return self._cached_copy(cached, label=request.label,
                                     request=request.to_dict())
        resolved, key = self._materialize(resolved, spec, key,
                                          from_registry, request)
        report = None
        partition = None
        if (block_executor != "serial"
                and request.decompose is not False
                and len(resolved.outputs) >= 2
                # Pool workers cannot stream events back to the caller
                # (observer/trace), and cannot share the serial path's
                # single cross-block deadline (time limit); those
                # contracts beat pooling, so such solves run in-solver.
                and observer is None and not request.record_trace
                and request.time_limit_seconds is None):
            partition = partition_relation(resolved)
            if not partition.is_trivial:
                report = self._solve_blocks_pooled(request, resolved,
                                                   partition,
                                                   block_executor,
                                                   block_workers, cancel)
        if report is None:
            # Hand any partition computed above to the solver's router
            # so the support/separability analysis is never paid twice.
            result = BrelSolver(request.to_options(),
                                memo=self._memo_for(request)).solve(
                resolved, cancel=cancel, observer=observer,
                partition=partition)
            report = SolveReport.from_result(resolved, result,
                                             request=request.to_dict(),
                                             label=request.label)
        # A cancelled solve is a partial result of *this call's* token,
        # which is not part of the cache key — caching it would serve
        # the truncated answer to future uncancelled calls.
        if report.stopped != "cancelled":
            self._cache[key] = report.copy()
        return report

    def _solve_blocks_pooled(self, request: SolveRequest,
                             resolved: BooleanRelation,
                             partition,
                             executor: str,
                             max_workers: Optional[int],
                             cancel: Optional[CancelToken]
                             ) -> Optional[SolveReport]:
        """Shard one solve across the pool; ``None`` = run in-process.

        Ships each block of the (non-trivial) ``partition`` as a
        self-contained job (PLA snapshot + block request) through the
        same worker entry point batches use, and recombines the
        per-block solution PLAs into a live full solution in the
        caller's manager.  Returns ``None`` when the pool layer is
        unavailable or the solve was cancelled before the pool
        finished — the caller then runs the in-process solve, which
        still shards serially in-solver and honours the token
        (immediately returning the quick incumbents).  Block failures
        raise, matching :meth:`solve`'s raise-on-failure contract.
        """
        # The serial path's solver checks left-totality first and lets
        # NotWellDefinedError propagate; raise the same error here
        # rather than shipping doomed blocks and wrapping the worker's
        # failure in RuntimeError.
        resolved.require_well_defined()
        for block in partition.blocks:
            if len(block.relation.inputs) > self.max_snapshot_inputs:
                raise ValueError(
                    "block %s of this relation has %d inputs; "
                    "block_executor=%r snapshots each block to PLA "
                    "text, which enumerates 2^inputs input vertices "
                    "and is capped at max_snapshot_inputs=%d — use "
                    "block_executor='serial' (or raise "
                    "Session(max_snapshot_inputs=...)) for wide blocks"
                    % (list(block.positions), len(block.relation.inputs),
                       executor, self.max_snapshot_inputs))
        start = time.perf_counter()
        memo_store = self._memo_for(request)
        memo_entries = (self.memo.export_entries(
            limit=DEFAULT_MEMO_EXPORT_LIMIT)
            if memo_store is not None else None)
        base_request = request.to_dict()
        base_request["relation"] = None
        # Blocks are connected components: they cannot shard further,
        # but pin the router off so workers skip the re-analysis.
        base_request["decompose"] = False
        payloads = []
        for block in partition.blocks:
            payload = {"pla": write_relation(block.relation),
                       "request": dict(base_request),
                       "label": "block-%d" % block.index,
                       "memo": memo_entries,
                       "memo_capacity": self.memo.capacity}
            payload["request"]["label"] = payload["label"]
            payloads.append(payload)

        reports = self._run_block_jobs(payloads, executor, max_workers,
                                       cancel)
        if reports is None:
            return None  # pool layer unavailable; solve in-process
        for payload, block_report in zip(payloads, reports):
            if not block_report.ok:
                raise RuntimeError(
                    "sharded solve failed on %s: %s"
                    % (payload["label"], block_report.error))
            if memo_store is not None:
                self._absorb_memo_stats(block_report)

        options = request.to_options()
        block_solutions = []
        for block, block_report in zip(partition.blocks, reports):
            functions = block_functions_from_pla(
                resolved.mgr, block_report.pla,
                block.relation.inputs, block.relation.outputs)
            block_solutions.append(Solution(
                resolved.mgr, functions,
                options.cost_function(resolved.mgr, functions)))
        full = partition.recombine_solutions(block_solutions,
                                             options.cost_function)
        stats = merge_block_stats(
            [SolverStats(**block_report.stats)
             for block_report in reports])
        stats.runtime_seconds = time.perf_counter() - start
        stats.bdd_nodes = resolved.mgr.num_nodes
        stopped = worst_stopped(
            [block_report.stopped or "exhausted"
             for block_report in reports])
        # No executor tag in the summary: pooled and serial sharded
        # reports share a cache slot, so their content must not depend
        # on which executor produced them.
        summary = partition.summary()
        for entry, solution, block_report in zip(
                summary["blocks"], block_solutions, reports):
            entry["cost"] = solution.cost
            entry["stats"] = dict(block_report.stats)
            entry["stopped"] = block_report.stopped
        improvements = self._recombine_improvements(reports,
                                                    block_solutions,
                                                    full, stats)
        result = BrelResult(
            full, stats, improvements=improvements,
            events=None, stopped=stopped, partition=summary)
        return SolveReport.from_result(resolved, result,
                                       request=request.to_dict(),
                                       label=request.label)

    @staticmethod
    def _recombine_improvements(reports: List[SolveReport],
                                block_solutions: List[Solution],
                                full: Solution,
                                stats: SolverStats) -> List[Improvement]:
        """Rebuild the serial-equivalent anytime trajectory.

        The serial sharded loop records one improvement per strictly
        improving recombination, walking the blocks in partition order;
        for per-output-additive costs each block-local improvement
        lowers the running total by exactly its local delta, so the
        same trajectory (costs and cumulative explored counts; wall
        stamps are worker-local) reconstructs from the block reports.
        A cost function the block deltas cannot explain (the trajectory
        would not end at the recombined cost) falls back to the single
        final entry rather than fabricating a sequence.
        """
        trajectories = [list(report.improvements) for report in reports]
        if any(not trajectory for trajectory in trajectories):
            return [Improvement(full, full.cost, stats.runtime_seconds,
                                stats.relations_explored)]
        running = [trajectory[0]["cost"] for trajectory in trajectories]
        best_total = sum(running)
        improvements = [Improvement(full, best_total, 0.0, 0)]
        explored_base = 0
        for index, trajectory in enumerate(trajectories):
            for entry in trajectory[1:]:
                running[index] = entry["cost"]
                candidate_total = sum(running)
                if candidate_total < best_total:
                    best_total = candidate_total
                    improvements.append(Improvement(
                        full, best_total, entry["elapsed_seconds"],
                        explored_base + int(entry["explored"])))
            explored_base += int(reports[index].stats.get(
                "relations_explored", 0))
        if improvements[-1].cost != full.cost:
            return [Improvement(full, full.cost, stats.runtime_seconds,
                                stats.relations_explored)]
        return improvements

    def _run_block_jobs(self, payloads: List[Dict[str, Any]],
                        executor: str, max_workers: Optional[int],
                        cancel: Optional[CancelToken]
                        ) -> Optional[List[SolveReport]]:
        """Run block payloads on a pool; ``None`` = abandon pooling.

        Thread workers share the cancel token (in-flight block searches
        stop cooperatively and report best-so-far).  Process workers
        cannot share a token, so a cancellation observed while waiting
        cancels the undispatched blocks and abandons the pooled
        attempt (``None``) — the in-process sharded solve then honours
        the token directly.  A worker that dies (broken pool, pickling
        breakage) comes back as a failed report for its block rather
        than an escaping exception.
        """
        if cancel is not None and cancel.cancelled:
            return None
        if max_workers is None:
            max_workers = self.default_max_workers
        if max_workers is None:
            max_workers = min(len(payloads), os.cpu_count() or 1)
        max_workers = max(1, min(max_workers, len(payloads)))
        if executor == "thread":
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = [pool.submit(_solve_payload, payload, cancel)
                           for payload in payloads]
                return [future.result() for future in futures]
        memo_seed = payloads[0].get("memo")
        pool_kwargs: Dict[str, Any] = {"max_workers": max_workers}
        if memo_seed is not None:
            pool_kwargs["initializer"] = _init_worker_memo
            pool_kwargs["initargs"] = (memo_seed, self.memo.capacity)
        process_payloads = []
        for payload in payloads:
            stripped = {k: v for k, v in payload.items()
                        if k not in ("memo", "memo_capacity")}
            stripped["memo_shared"] = memo_seed is not None
            process_payloads.append(stripped)
        try:
            pool = ProcessPoolExecutor(**pool_kwargs)
        except OSError:
            # No working fork/semaphore layer (restricted sandboxes):
            # signal the caller to run the in-process sharded solve.
            return None
        try:
            futures = [pool.submit(_solve_payload, payload)
                       for payload in process_payloads]
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding,
                    timeout=0.1 if cancel is not None else None,
                    return_when=FIRST_COMPLETED)
                if (cancel is not None and cancel.cancelled
                        and outstanding):
                    # Abandon without joining: workers cannot see the
                    # token, so waiting for them would stall the cancel
                    # for the duration of the longest block.  The
                    # finally-shutdown cancels queued blocks; running
                    # ones finish in the background and are discarded.
                    return None
            reports = []
            for payload, future in zip(process_payloads, futures):
                try:
                    reports.append(future.result())
                except Exception as exc:  # pool/pickling breakage
                    reports.append(SolveReport.from_error(
                        exc, request=payload["request"],
                        label=payload["label"]))
            return reports
        except OSError:
            return None
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def solve_iter(self, request: Optional[SolveRequest] = None,
                   relation: Optional[RelationLike] = None, *,
                   cancel: Optional[CancelToken] = None,
                   observer: Optional[Observer] = None
                   ) -> Generator[Improvement, None, SolveReport]:
        """Anytime solve: yield each strictly improving solution.

        A generator over :class:`~repro.core.Improvement`\\ s — the
        first is QuickSolver's initial incumbent, every later one
        strictly beats its predecessor.  The generator's *return value*
        (``report = yield from session.solve_iter(...)``, or
        ``StopIteration.value`` when driving it by hand) is the final
        :class:`SolveReport`, which lands in the session cache exactly
        like a :meth:`solve` result.  Cancelling mid-iteration (via
        ``cancel``) or exceeding the request's ``time_limit_seconds``
        ends the stream early; the report still carries the best
        solution found so far.

        A cache hit with a live solution yields that single solution
        and returns the cached report immediately.

        Input validation is eager, matching :meth:`solve`: unknown
        relation names and unreadable files raise *here*, not at the
        first ``next()`` — only the search itself runs lazily.
        """
        request = request or SolveRequest()
        resolved, spec, key, from_registry = \
            self._prepare_solve(request, relation)
        return self._solve_iter(request, resolved, spec, key,
                                from_registry, cancel, observer)

    def _solve_iter(self, request: SolveRequest,
                    resolved: Optional[BooleanRelation],
                    spec: Optional[Dict[str, Any]],
                    key: Tuple[Any, ...], from_registry: bool,
                    cancel: Optional[CancelToken],
                    observer: Optional[Observer]
                    ) -> Generator[Improvement, None, SolveReport]:
        """The lazy half of :meth:`solve_iter` (inputs already vetted)."""
        cached = self._cache.get(key)
        if cached is not None and cached.solution is not None:
            self.cache_hits += 1
            report = self._cached_copy(cached, label=request.label,
                                       request=request.to_dict())
            yield Improvement(report.solution, report.cost, 0.0, 0)
            return report
        resolved, key = self._materialize(resolved, spec, key,
                                          from_registry, request)
        solver = BrelSolver(request.to_options(),
                            memo=self._memo_for(request))
        result = yield from solver.iter_solve(resolved, cancel=cancel,
                                              observer=observer)
        report = SolveReport.from_result(resolved, result,
                                         request=request.to_dict(),
                                         label=request.label)
        # Same rule as solve(): never cache a cancelled partial result.
        if result.stopped != "cancelled":
            self._cache[key] = report.copy()
        return report

    def solve_many(self, requests: Sequence[SolveRequest],
                   max_workers: Optional[int] = None,
                   executor: str = "process",
                   cancel: Optional[CancelToken] = None
                   ) -> List[SolveReport]:
        """Solve a batch of requests; one report per request, in order.

        * Failures (bad relation names, malformed inputs, solver errors)
          are captured in the corresponding report, never raised.
        * ``cancel`` propagates to workers as each executor allows:
          serial and thread jobs share the token, so in-flight searches
          stop cooperatively and report their best-so-far solution
          (``stopped="cancelled"``); process workers cannot share a
          token, so cancellation stops dispatch — queued jobs are
          cancelled and come back as failed ``cancelled before start``
          reports while already-running workers finish their job.
        * Identical jobs — same relation (snapshot content for pool
          executors; object identity for serial jobs naming a session
          relation, spec content for self-contained serial specs), same
          options — are solved once *per batch* and the shared report
          fanned back out, with per-job memo attribution kept honest
          (only the job that ran carries the memo deltas).  The session
          cache additionally persists across calls.
        * ``executor`` selects ``"process"`` (default; true parallelism
          across cores), ``"thread"`` (one PLA snapshot per job — the
          shared managers are not thread-safe — so reports are data-only
          like process reports), or ``"serial"`` (in-process).
        * Pool executors snapshot each relation to PLA text, an
          enumeration of all ``2^inputs`` input vertices; relations wider
          than ``max_snapshot_inputs`` raise ``ValueError`` up front
          (use ``executor="serial"`` for those).

        Batch reports are data-first: ``report.solution`` is attached
        only opportunistically (fresh serial runs whose manager matches)
        and may be ``None`` on cache hits.  Use :meth:`solve` when a
        live ``Solution`` is required.

        Memoisation: serial jobs share the session's live
        :class:`~repro.core.memo.MemoStore` directly; pool jobs are
        pre-seeded with the parent store's most recent entries
        (templates are manager-independent) and their hit/miss counters
        are merged back into the session's store afterwards.  Entries a
        worker learns stay in the worker — only the counters return.
        """
        if executor not in ("process", "thread", "serial"):
            raise ValueError("executor must be 'process', 'thread' "
                             "or 'serial'")
        reports: List[Optional[SolveReport]] = [None] * len(requests)
        pending: Dict[Tuple[Any, ...], List[int]] = {}
        payloads: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
        resolved_by_index: List[Optional[BooleanRelation]] = \
            [None] * len(requests)
        memo_export: Optional[List[Tuple[Any, Any]]] = None

        for index, request in enumerate(requests):
            label = request.label or "job-%d" % index
            try:
                if request.relation is None:
                    raise ValueError("request has no relation source")
                resolved = self.resolve_relation(request.relation)
            except Exception as exc:  # noqa: BLE001 — capture per job
                reports[index] = SolveReport.from_error(
                    exc, request=request.to_dict(), label=label)
                continue
            if (executor != "serial"
                    and len(resolved.inputs) > self.max_snapshot_inputs):
                # Not a per-job data failure but an API misuse: the pool
                # transport would enumerate 2^inputs PLA rows and appear
                # to hang, so refuse the whole batch loudly.
                raise ValueError(
                    "relation for job %r has %d inputs; executor=%r "
                    "snapshots each relation to PLA text, which "
                    "enumerates 2^inputs input vertices and is capped at "
                    "max_snapshot_inputs=%d — pass executor='serial' "
                    "(or raise Session(max_snapshot_inputs=...)) for "
                    "wide relations"
                    % (label, len(resolved.inputs), executor,
                       self.max_snapshot_inputs))
            try:
                # The PLA snapshot (an exponential enumeration) is the
                # transport to worker pools; serial jobs solve the live
                # object and key by identity, skipping it entirely.
                pla = (write_relation(resolved) if executor != "serial"
                       else None)
            except Exception as exc:  # noqa: BLE001 — capture per job
                reports[index] = SolveReport.from_error(
                    exc, request=request.to_dict(), label=label)
                continue
            resolved_by_index[index] = resolved
            source_spec = request.relation
            if pla is not None:
                key = self._cache_key(pla, request)
            elif (isinstance(source_spec, Mapping)
                    and source_spec.get("kind") != "name"):
                # Serial jobs with self-contained specs key by spec
                # *content*, mirroring _prepare_solve (file specs become
                # inline PLA text so on-disk edits invalidate).  Keying
                # these on the resolved object would dispatch duplicate
                # jobs: each materialisation mints a fresh manager, so
                # identical specs never collide by identity.
                try:
                    content_spec = dict(source_spec)
                    if content_spec["kind"] == "file":
                        with open(content_spec["path"], "r",
                                  encoding="ascii") as handle:
                            content_spec = {"kind": "pla",
                                            "text": handle.read()}
                    key = self._spec_key(content_spec, request)
                except Exception as exc:  # noqa: BLE001 — per job
                    reports[index] = SolveReport.from_error(
                        exc, request=request.to_dict(), label=label)
                    continue
            else:
                key = self._live_key(resolved, request)
            cached = self._cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                reports[index] = self._cached_copy(
                    cached, label=label, request=request.to_dict(),
                    solution=self._portable_solution(cached, resolved))
                continue
            if key not in pending:
                # "relation" is the live object for in-process execution;
                # workers get only the picklable PLA snapshot.  The
                # registry name (when the job referenced one) lets the
                # serial path re-resolve and auto-trim safely.
                source = request.relation
                registry_name = None
                if isinstance(source, str):
                    registry_name = source
                elif (isinstance(source, Mapping)
                        and source.get("kind") == "name"):
                    registry_name = source.get("name")
                # Serial jobs use the live store; pool jobs get a seed
                # export (computed once per batch, shared read-only by
                # every payload) to rebuild a private store from.
                memo_store = self._memo_for(request)
                memo_entries = None
                if memo_store is not None and pla is not None:
                    if memo_export is None:
                        memo_export = self.memo.export_entries(
                            limit=DEFAULT_MEMO_EXPORT_LIMIT)
                    memo_entries = memo_export
                payloads[key] = {"pla": pla,
                                 "request": request.to_dict(),
                                 "label": label,
                                 "relation": resolved,
                                 "registry_name": registry_name,
                                 "memo_store": memo_store,
                                 "memo": memo_entries,
                                 "memo_capacity": self.memo.capacity}
            pending.setdefault(key, []).append(index)

        if pending:
            fresh = self._run_jobs(list(pending), payloads, max_workers,
                                   executor, cancel)
            for key, report in fresh.items():
                # Cancelled in-flight jobs report ok with a best-so-far
                # solution; like solve(), that partial answer must not
                # be served to future uncancelled calls.
                if report.ok and report.stopped != "cancelled":
                    self._cache[key] = report.copy()
                first, *rest = pending[key]
                reports[first] = report.copy(
                    label=requests[first].label or "job-%d" % first,
                    request=requests[first].to_dict())
                for index in rest:
                    # Failures are never cached, so only successful
                    # shared results count (and read) as cache hits —
                    # and only those are _cached_copy'd, zeroing the
                    # memo deltas the job did not itself cause.
                    shared_label = requests[index].label or \
                        "job-%d" % index
                    shared_solution = self._portable_solution(
                        report, resolved_by_index[index])
                    if report.ok:
                        self.cache_hits += 1
                        reports[index] = self._cached_copy(
                            report, label=shared_label,
                            request=requests[index].to_dict(),
                            solution=shared_solution)
                    else:
                        reports[index] = report.copy(
                            label=shared_label,
                            request=requests[index].to_dict(),
                            cached=False, solution=shared_solution)
        # Every index was filled above: failure, cache hit, or fresh run.
        return [report for report in reports if report is not None]

    # ------------------------------------------------------------------
    def _absorb_memo_stats(self, report: SolveReport) -> None:
        """Merge a pool worker's memo counters into the session store.

        Only the counters travel back — worker-learned entries die with
        the worker.  Serial (and pool-fallback) jobs solve against the
        live store, so their counters are already counted and must not
        pass through here.
        """
        if not report.ok:
            return
        self.memo.absorb_counters(
            hits=int(report.stats.get("memo_hits", 0)),
            misses=int(report.stats.get("memo_misses", 0)),
            stores=int(report.stats.get("memo_stores", 0)))

    @staticmethod
    def _cancelled_report(payload: Dict[str, Any]) -> SolveReport:
        """The failed report of a job cancelled before it started."""
        return SolveReport.from_error(
            RuntimeError("cancelled before start"),
            request=payload["request"], label=payload["label"])

    def _run_jobs(self, keys: List[Tuple[Any, ...]],
                  payloads: Dict[Tuple[Any, ...], Dict[str, Any]],
                  max_workers: Optional[int],
                  executor: str,
                  cancel: Optional[CancelToken] = None
                  ) -> Dict[Tuple[Any, ...], SolveReport]:
        """Execute the unique jobs, serially or on an executor pool."""
        if max_workers is None:
            max_workers = self.default_max_workers
        if max_workers is None:
            max_workers = min(len(keys), os.cpu_count() or 1)
        max_workers = max(1, min(max_workers, len(keys)))

        results: Dict[Tuple[Any, ...], SolveReport] = {}
        # Only an explicit "serial" runs in this process: process/thread
        # keep their isolation and data-only contracts even for a single
        # job or max_workers=1.
        if executor == "serial":
            limit = self.auto_trim_nodes
            for key in keys:
                payload = payloads[key]
                if cancel is not None and cancel.cancelled:
                    # In-flight jobs stopped themselves (best-so-far);
                    # jobs not yet started are skipped outright.
                    results[key] = self._cancelled_report(payload)
                    continue
                name = payload.get("registry_name")
                if name is not None and name in self._relations:
                    # Re-resolve from the registry so earlier trims in
                    # this batch cannot leave the payload holding stale
                    # node ids, then trim if the engine grew too big.
                    relation = self._relations[name]
                    payload["relation"] = relation
                    if (limit is not None
                            and relation.mgr.num_nodes > limit):
                        payload["relation"] = self._trim_manager(
                            relation.mgr, keep=relation,
                            extra_reports=results.values(),
                            extra_payloads=[payloads[k] for k in keys])
                results[key] = self._solve_in_process(payload, cancel)
            return results

        if executor == "thread":
            # BddManager is not thread-safe and session relations of the
            # same shape share one, so each thread job solves its own
            # PLA snapshot in a fresh manager (like a process worker) —
            # and, for the same reason, a private seeded memo store
            # whose counters merge back below.  Threads share the cancel
            # token: in-flight searches stop cooperatively and report
            # best-so-far.
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = {key: pool.submit(
                    _solve_payload,
                    {k: v for k, v in payloads[key].items()
                     if k not in ("relation", "registry_name",
                                  "memo_store")},
                    cancel)
                    for key in keys}
                for key, future in futures.items():
                    results[key] = future.result()
                    self._absorb_memo_stats(results[key])
            return results

        # One worker-global store per process, seeded through the pool
        # initializer: the export pickles once per worker instead of
        # once per job, and jobs co-located on a worker share what the
        # earlier ones learned.  Per-job payloads carry only a flag.
        memo_seed = next((payloads[key]["memo"] for key in keys
                          if payloads[key].get("memo") is not None), None)
        pool_kwargs: Dict[str, Any] = {"max_workers": max_workers}
        if memo_seed is not None:
            pool_kwargs["initializer"] = _init_worker_memo
            pool_kwargs["initargs"] = (memo_seed, self.memo.capacity)

        def process_payload(key: Tuple[Any, ...]) -> Dict[str, Any]:
            payload = {k: v for k, v in payloads[key].items()
                       if k not in ("relation", "registry_name",
                                    "memo_store", "memo",
                                    "memo_capacity")}
            payload["memo_shared"] = payloads[key].get("memo") is not None
            return payload

        try:
            with ProcessPoolExecutor(**pool_kwargs) as pool:
                futures = {key: pool.submit(_solve_payload,
                                            process_payload(key))
                    for key in keys}
                # A CancelToken cannot cross the process boundary, so
                # cancellation here stops dispatch: queued futures are
                # cancelled, running workers finish their current job.
                outstanding = set(futures.values())
                while outstanding:
                    done, outstanding = wait(
                        outstanding,
                        timeout=0.1 if cancel is not None else None,
                        return_when=FIRST_COMPLETED)
                    if (cancel is not None and cancel.cancelled
                            and outstanding):
                        for future in outstanding:
                            future.cancel()
                        break
                for key, future in futures.items():
                    if future.cancelled():
                        results[key] = self._cancelled_report(
                            payloads[key])
                        continue
                    try:
                        results[key] = future.result()
                        self._absorb_memo_stats(results[key])
                    except Exception as exc:  # pool/pickling breakage
                        results[key] = SolveReport.from_error(
                            exc, request=payloads[key]["request"],
                            label=payloads[key]["label"])
        except OSError:
            # Process pools need a working fork/semaphore layer; fall
            # back to in-process execution in restricted sandboxes.
            for key in keys:
                if key not in results:
                    if cancel is not None and cancel.cancelled:
                        results[key] = self._cancelled_report(
                            payloads[key])
                    else:
                        results[key] = self._solve_in_process(
                            payloads[key], cancel)
        return results

    def _solve_in_process(self, payload: Dict[str, Any],
                          cancel: Optional[CancelToken] = None
                          ) -> SolveReport:
        """In-process execution: same contract as the worker, but solves
        the live relation object (keeping ``Solution`` handles valid in
        the caller's managers)."""
        label = payload.get("label")
        request_dict = payload.get("request")
        try:
            request = SolveRequest.from_dict(request_dict)
            relation = payload.get("relation")
            if relation is None:
                relation = parse_relation(payload["pla"])
            result = BrelSolver(request.to_options(),
                                memo=payload.get("memo_store")).solve(
                relation, cancel=cancel)
            return SolveReport.from_result(relation, result,
                                           request=request_dict,
                                           label=label)
        except Exception as exc:  # noqa: BLE001 — isolation is the contract
            return SolveReport.from_error(exc, request=request_dict,
                                          label=label)
