"""Structured solve results.

A :class:`SolveReport` is the data-only record of one solve: the solution
summary (cost, per-output sizes, SOP and PLA renderings, compatibility),
the :class:`~repro.core.SolverStats` counters, and — for failed jobs — the
captured error.  Being pure data it pickles across process boundaries
(:meth:`Session.solve_many`) and serialises to JSON for the CLI's
``--json`` / ``batch`` output.

When the solve ran in the calling process the live
:class:`~repro.core.Solution` (BDD nodes and manager) is attached as
``report.solution``; it is excluded from comparison and serialisation.
"""

from __future__ import annotations

import copy
import dataclasses
import json
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..core.brel import BrelResult
from ..core.relation import BooleanRelation
from ..core.relio import write_relation
from ..core.solution import Solution

#: Bumped when the report schema changes shape.
#: 2: added ``improvements`` (anytime trajectory), ``trace`` (optional
#: per-event search trace) and ``stopped`` (completion reason).
#: 3: added ``partition`` (output-block decomposition summary with
#: per-block stats; ``None`` for monolithic solves).
#: 4: added ``portfolio`` (strategy-race summary with per-racer
#: attribution; ``None`` unless ``strategy="portfolio"``).
#: 5: ``stats`` gained the subproblem-routing counters
#: (``subproblems_routed``, ``route_conversions``, ``route_hits``).
REPORT_SCHEMA_VERSION = 5


@dataclass
class SolveReport:
    """Outcome of one solve job (success or captured failure)."""

    ok: bool
    label: Optional[str] = None
    error: Optional[str] = None
    request: Optional[Dict[str, Any]] = None
    num_inputs: Optional[int] = None
    num_outputs: Optional[int] = None
    pairs: Optional[int] = None
    cost: Optional[float] = None
    compatible: Optional[bool] = None
    bdd_sizes: List[int] = field(default_factory=list)
    cube_count: Optional[int] = None
    literal_count: Optional[int] = None
    sop: Optional[str] = None
    pla: Optional[str] = None
    stats: Dict[str, float] = field(default_factory=dict)
    #: Anytime trajectory: one ``{cost, elapsed_seconds, explored}``
    #: entry per strictly improving incumbent, in discovery order.
    improvements: List[Dict[str, Any]] = field(default_factory=list)
    #: Full event trace (``SolveEvent.as_dict()`` rows) when the
    #: request set ``record_trace``; ``None`` otherwise.
    trace: Optional[List[Dict[str, Any]]] = None
    #: Why the search ended: ``exhausted``, ``budget``, ``timeout``,
    #: or ``cancelled`` (``None`` for failed jobs).
    stopped: Optional[str] = None
    #: Output-block decomposition summary when the solve was sharded
    #: (:mod:`repro.core.partition`): block output positions and
    #: frames, plus per-block cost, stats and completion reason.
    #: ``None`` when the relation solved monolithically.
    partition: Optional[Dict[str, Any]] = None
    #: Portfolio race summary when ``strategy="portfolio"`` raced the
    #: solve (:mod:`repro.core.portfolio`): executor, winner, and one
    #: attribution row per racer (cost, explored, improvements
    #: contributed, wall time, completion reason).  ``None`` otherwise.
    portfolio: Optional[Dict[str, Any]] = None
    cached: bool = False
    schema_version: int = REPORT_SCHEMA_VERSION
    #: Live solution when solved in-process; never serialised.
    solution: Optional[Solution] = field(default=None, compare=False,
                                         repr=False)
    #: Variable frame of the solved relation (for lazy PLA export).
    _inputs: Optional[tuple] = field(default=None, compare=False,
                                     repr=False)
    _outputs: Optional[tuple] = field(default=None, compare=False,
                                      repr=False)

    # -- constructors --------------------------------------------------
    @classmethod
    def from_result(cls, relation: BooleanRelation, result: BrelResult,
                    request: Optional[Mapping[str, Any]] = None,
                    label: Optional[str] = None) -> "SolveReport":
        """Summarise a solver result against the relation it solved.

        The PLA rendering enumerates every input vertex, so it is *not*
        built here; :meth:`solution_pla` materialises it on demand (and
        serialisation does so automatically while the live solution is
        attached).
        """
        solution = result.solution
        return cls(
            ok=True,
            label=label,
            request=dict(request) if request is not None else None,
            num_inputs=len(relation.inputs),
            num_outputs=len(relation.outputs),
            pairs=relation.pair_count(),
            cost=solution.cost,
            compatible=relation.is_compatible(solution.functions),
            bdd_sizes=solution.bdd_sizes(),
            cube_count=solution.cube_count(),
            literal_count=solution.literal_count(),
            sop=solution.describe(),
            pla=None,
            stats=result.stats.as_dict(),
            improvements=[imp.as_dict() for imp in result.improvements],
            trace=([event.as_dict() for event in result.events]
                   if result.events is not None else None),
            stopped=result.stopped,
            partition=copy.deepcopy(result.partition),
            portfolio=copy.deepcopy(result.portfolio),
            solution=solution,
            _inputs=tuple(relation.inputs),
            _outputs=tuple(relation.outputs))

    @classmethod
    def from_error(cls, exc: BaseException,
                   request: Optional[Mapping[str, Any]] = None,
                   label: Optional[str] = None, *,
                   with_traceback: bool = False) -> "SolveReport":
        """Capture a failure as a report instead of letting it raise."""
        message = "%s: %s" % (type(exc).__name__, exc)
        if with_traceback:
            message = "".join(traceback.format_exception(
                type(exc), exc, exc.__traceback__)).rstrip()
        return cls(ok=False, label=label, error=message,
                   request=dict(request) if request is not None else None)

    # -- solution export -----------------------------------------------
    def solution_pla(self) -> Optional[str]:
        """PLA rendering of the solved function vector (memoised).

        Built from the live solution on first use — the enumeration of
        every input vertex is paid only by callers who want it.  Data-only
        reports (from workers) carry the pre-materialised text instead.
        """
        if self.pla is None and self.solution is not None \
                and self._inputs is not None:
            functional = BooleanRelation.from_functions(
                self.solution.mgr, self._inputs, self._outputs,
                list(self.solution.functions))
            self.pla = write_relation(functional)
        return self.pla

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (the live ``solution`` handle is dropped)."""
        self.solution_pla()
        out = {}
        for f in dataclasses.fields(self):
            if f.name in ("solution", "_inputs", "_outputs"):
                continue
            out[f.name] = getattr(self, f.name)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SolveReport":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError("unknown SolveReport fields: %s"
                             % ", ".join(sorted(unknown)))
        return cls(**dict(data))

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SolveReport":
        return cls.from_dict(json.loads(text))

    # -- convenience ---------------------------------------------------
    def copy(self, **changes: Any) -> "SolveReport":
        """A copy that shares no mutable containers with the original.

        The session cache hands out copies so caller mutations cannot
        corrupt cached entries.  The live ``solution`` handle (immutable
        for our purposes) is carried over unless overridden.
        """
        fresh = dict(
            bdd_sizes=list(self.bdd_sizes),
            stats=dict(self.stats),
            request=dict(self.request) if self.request is not None
            else None,
            improvements=[dict(imp) for imp in self.improvements],
            trace=([dict(event) for event in self.trace]
                   if self.trace is not None else None),
            partition=copy.deepcopy(self.partition),
            portfolio=copy.deepcopy(self.portfolio),
            solution=self.solution)
        fresh.update(changes)
        return dataclasses.replace(self, **fresh)

    def raise_for_error(self) -> "SolveReport":
        """Re-raise a captured failure; returns ``self`` when ok."""
        if not self.ok:
            raise RuntimeError(self.error or "solve failed")
        return self

    def summary(self) -> str:
        """One status line per job, for batch progress output."""
        name = self.label or "<unnamed>"
        if not self.ok:
            return "%s: FAILED (%s)" % (name, self.error)
        return ("%s: cost=%.0f compatible=%s explored=%d runtime=%.3fs"
                "%s%s%s"
                % (name, self.cost, self.compatible,
                   int(self.stats.get("relations_explored", 0)),
                   self.stats.get("runtime_seconds", 0.0),
                   " [%d blocks]" % self.partition["num_blocks"]
                   if self.partition else "",
                   " [race won by %s]" % self.portfolio["winner"]
                   if self.portfolio else "",
                   " [cached]" if self.cached else ""))
